//! `oolint` — the OpenOptics in-repo determinism & robustness lint pass.
//!
//! A rust-lang/rust-`tidy`-style source linter: plain line-oriented text
//! analysis, no parser dependencies, so it builds in the same offline
//! environment as the rest of the workspace. Invoked as
//! `cargo run -p xtask -- lint` (CI runs it as a hard gate).
//!
//! # Rules
//!
//! * **nondet-map** — `std::collections::{HashMap, HashSet}` are banned in
//!   simulation-path crates: their SipHash keys are randomized per process,
//!   so iteration order differs between runs and silently breaks the
//!   "same experiment, same result" contract. Use the deterministic
//!   [`FxHashMap`]/[`FxHashSet`] aliases from `openoptics_sim::hash`, or a
//!   `BTreeMap`/`BTreeSet` where iteration order is observable.
//! * **wall-clock** — `std::time::Instant`/`SystemTime` and `thread_rng`
//!   must not leak into simulation logic; simulation time comes from
//!   `SimTime` and randomness from the seeded `SimRng`. Only the bench
//!   harness (which measures real elapsed time) is exempt.
//! * **relaxed-ordering** — `Ordering::Relaxed` is banned on cross-thread
//!   counters; use acquire/release orderings so counter reads in the
//!   parallel runner are well-defined at any `--jobs` count.
//! * **shared-mutable** — `Mutex`/`RwLock`/`RefCell` are banned in the
//!   sim-path crates' domain-execution modules (`domain.rs`, `engine.rs`,
//!   `event.rs`, `net.rs`): the sharded engine is deterministic *because*
//!   domains share nothing and exchange state only as outbox messages
//!   merged in `(time, src, seq)` order at the epoch barrier; a lock would
//!   let wall-clock scheduling order back into simulated state.
//! * **arch-compose** — `DispatchPolicy`/`PauseMode` may only be assigned
//!   inside the Architecture descriptor module (`crates/core/src/arch.rs`):
//!   everything else composes via `Architecture::with_dispatch` /
//!   `with_pause` and `OpenOpticsNet::deploy`, so a deployed network's
//!   policies always match its descriptor. (`congestion.policy`, the
//!   switch-level knob, is unrelated and exempt.)
//! * **bool-api** — public functions in `openoptics-core` must report
//!   failure as `Result<_, Error>`, not `bool` (predicates named `is_*`,
//!   `has_*`, … are exempt).
//! * **trace-complete** — every `TraceKind` variant must be handled by the
//!   trace stream's `name()` and `to_json()` match arms.
//! * **span-paired** — every `span_begin(..., Stage::X, ...)` call site
//!   with a literal stage must have a matching `span_end(..., Stage::X)`
//!   somewhere in the same crate; a begun lifecycle stage that no code
//!   path closes leaks open spans into every export. Calls whose stage is
//!   a variable (dynamic closes) and the `fn span_begin`/`fn span_end`
//!   definitions themselves are exempt.
//! * **ratchet** — counted budgets for `.unwrap()` / `.expect(` / `panic!(`
//!   in first-party code (tests included), stored in `lint-ratchet.toml`.
//!   A rising count fails the lint; `--update` rewrites the file so
//!   improvements lock in.
//! * **doc-coverage** — undocumented `pub` items in library sources join
//!   the same ratchet (`undocumented = n` per crate): documentation
//!   coverage may only improve. Trait-impl methods (rustdoc inherits the
//!   trait's docs), `pub use` re-exports (rustdoc's `missing_docs` skips
//!   them), and test code are exempt.
//! * **numeric-cast** — `as` casts to narrower integer/float types
//!   (`u64 as u32`, `f64 as f32`, ...) in sim-path crates join the ratchet
//!   (`narrowing_casts = n` per crate): silent truncation of sim-time
//!   nanoseconds is a determinism hazard. New sites use
//!   `openoptics_sim::cast` checked helpers or `try_into` instead.
//!
//! # Flow-aware rules (`lint --graph`)
//!
//! The per-line pass cannot see a `thread_rng` wrapper called three crates
//! away from the engine hot loop. `--graph` adds oolint v2: a hand-rolled
//! lexer ([`lex`]) and item/call extractor ([`graph`]) build a cross-crate
//! call graph, and [`taint`] runs reachability from sim-path entry points
//! to nondeterminism sources (**graph-nondet**), reporting each hit as a
//! full call chain, plus the structural **domain-send** fire-time check on
//! `Outbox::send` sites. `--json` renders findings machine-readable;
//! `--explain <rule>` prints the rationale for any rule.
//!
//! Any rule can be suppressed for one line with a justification:
//!
//! ```text
//! let m = std::collections::HashMap::new(); // oolint: allow(nondet-map, never iterated)
//! ```
//!
//! The annotation may also sit alone on the preceding line(s) — `//` or
//! `/* */` comments both work — and balanced parentheses inside the
//! justification are fine. An annotation without a reason is itself a lint
//! error. The graph rules honor annotations at *any hop* of a chain.
//!
//! [`FxHashMap`]: https://docs.rs/rustc-hash
//! [`FxHashSet`]: https://docs.rs/rustc-hash

pub mod graph;
pub mod lex;
pub mod taint;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose sources are simulation-path: nondeterministic containers
/// there can change simulated behavior, not just diagnostics.
pub const SIM_PATH_CRATES: &[&str] = &[
    "openoptics-sim",
    "openoptics-core",
    "openoptics-switch",
    "openoptics-fabric",
    "openoptics-host",
    "openoptics-topo",
    "openoptics-routing",
    "openoptics-workload",
    "openoptics-faults",
    "openoptics-obs",
    "openoptics-ctl",
];

/// Domain-execution modules of the sim-path crates: the files that run
/// inside (or drive) the sharded engine's epoch loop. Shared-mutability
/// primitives are banned here — domains communicate by message passing
/// (outboxes merged at the epoch barrier), never through locks, so worker
/// scheduling can never influence simulated state.
pub const DOMAIN_EXECUTION_MODULES: &[&str] =
    &["src/domain.rs", "src/engine.rs", "src/event.rs", "src/net.rs"];

/// Bool-returning name prefixes that are idiomatic predicates, exempt from
/// the `bool-api` rule.
const PREDICATE_PREFIXES: &[&str] = &["is_", "has_", "can_", "should_", "would_", "contains"];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`nondet-map`, `wall-clock`, ...).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Per-crate counts of panic-prone constructs in first-party code (tests
/// included — a panicking test helper obscures failures just like library
/// code does; only vendored stand-ins are exempt).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// `.unwrap()` call sites.
    pub unwraps: usize,
    /// `.expect(` call sites.
    pub expects: usize,
    /// `panic!(` sites.
    pub panics: usize,
    /// `pub` items in library sources without a doc comment
    /// (doc-coverage; tests, trait impls, and re-exports exempt).
    pub undocumented: usize,
    /// `as` casts to narrower numeric types in sim-path crates
    /// (numeric-cast; non-sim-path crates always count zero).
    pub narrowing_casts: usize,
}

/// Item-introducing keywords counted by the doc-coverage ratchet. `pub use`
/// is deliberately absent: rustdoc's `missing_docs` does not require docs
/// on re-exports.
const PUB_ITEMS: &[&str] = &[
    "pub fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub mod ",
    "pub const ",
    "pub static ",
    "pub type ",
    "pub union ",
];

/// Context for linting one file.
pub struct FileCtx<'a> {
    /// Package name of the owning crate (e.g. `openoptics-sim`).
    pub crate_name: &'a str,
    /// Path relative to the workspace root, for reporting.
    pub rel_path: &'a str,
    /// Whether the whole file is test/bench/example code (by location).
    pub is_test_file: bool,
}

/// Split a source line into its code part and its `//` comment part, with
/// string-literal contents blanked out of the code part so patterns never
/// match inside literals. Good enough for tidy-style linting; raw strings
/// and multi-line literals are not tracked across lines. For `/* */`-aware
/// splitting across lines, use [`LineSplitter`].
fn split_code_comment(line: &str) -> (String, String) {
    LineSplitter::default().split(line)
}

/// Stateful per-line splitter that also tracks `/* */` block comments
/// across lines, so an `oolint: allow` annotation inside one is recognized
/// and code inside one is not linted. Feed lines top to bottom.
#[derive(Default)]
struct LineSplitter {
    in_block: bool,
}

impl LineSplitter {
    fn split(&mut self, line: &str) -> (String, String) {
        let b = line.as_bytes();
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            if self.in_block {
                // Inside a `/* */` comment: accumulate into the comment
                // part until it closes (nesting not tracked — rare enough
                // that the line-oriented pass stays simple).
                if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    self.in_block = false;
                    i += 2;
                } else {
                    comment.push(b[i] as char);
                    i += 1;
                }
                continue;
            }
            let c = b[i];
            if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                self.in_block = true;
                i += 2;
                continue;
            }
            if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                comment.push_str(&line[i..]);
                return (code, comment);
            }
            let (chunk, advanced) = scan_code_char(b, i);
            code.push_str(&chunk);
            i = advanced;
        }
        (code, comment)
    }
}

/// Scan one code token starting at byte `i` (string/char literal handling
/// shared by the splitters); returns the blanked text to append and the
/// next index.
fn scan_code_char(b: &[u8], i: usize) -> (String, usize) {
    let mut code = String::new();
    let mut i = i;
    {
        let c = b[i];
        if c == b'"' {
            // Blank the literal, keep the quotes so the line still scans.
            code.push('"');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    code.push('"');
                    i += 1;
                    break;
                }
                code.push(' ');
                i += 1;
            }
        } else if c == b'\'' {
            // Char literal ('x', '\n') or lifetime ('a). Skip literals whole.
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                for _ in i..=j.min(b.len() - 1) {
                    code.push(' ');
                }
                i = j + 1;
            } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                code.push_str("   ");
                i += 3;
            } else {
                code.push('\'');
                i += 1;
            }
        } else {
            code.push(c as char);
            i += 1;
        }
    }
    (code, i)
}

/// Whether `comment` carries an `oolint: allow(rule, ...)` annotation for
/// `rule`. Returns `None` when absent, `Some(true)` when well-formed, and
/// `Some(false)` when the justification is missing. The closing paren is
/// found by balance, so a justification may itself contain parentheses
/// (`allow(wall-clock, O(1) lookup)`), and trailing text after the close
/// is ignored.
fn allow_in(comment: &str, rule: &str) -> Option<bool> {
    let marker = "oolint: allow(";
    let start = comment.find(marker)? + marker.len();
    let rest = &comment[start..];
    let mut depth = 1usize;
    let mut close = None;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    // An unclosed annotation still parses to its end-of-comment content —
    // better to judge the justification than to silently drop the intent.
    let inner = &rest[..close.unwrap_or(rest.len())];
    let mut parts = inner.splitn(2, ',');
    let named = parts.next().unwrap_or("").trim();
    if named != rule {
        return None;
    }
    let reason = parts.next().unwrap_or("").trim();
    Some(!reason.is_empty())
}

/// Numeric `as`-cast targets that narrow on the 64-bit hosts the sim runs
/// on. Casting sim-time nanoseconds (`u64`) or byte counts into these
/// silently truncates — the numeric-cast ratchet counts every such site in
/// sim-path crates. (`u64`/`i64`/`usize`/`f64` targets are widening or
/// same-width and stay free.)
const NARROW_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Count narrowing `as` casts on one blanked code line.
fn narrowing_casts_in(code: &str) -> usize {
    let mut n = 0;
    for (pos, _) in code.match_indices(" as ") {
        let after = &code[pos + " as ".len()..];
        let target: String =
            after.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if NARROW_CAST_TARGETS.contains(&target.as_str()) {
            n += 1;
        }
    }
    n
}

/// Tracks `#[cfg(test)]` regions across the lines of one file.
#[derive(Default)]
struct TestRegions {
    in_test: bool,
    depth: i64,
    pending: bool,
}

impl TestRegions {
    /// Feed the code part of the next line; returns whether that line is
    /// inside (or introduces) a test region.
    fn feed(&mut self, code: &str) -> bool {
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if self.in_test {
            self.depth += opens - closes;
            if self.depth <= 0 {
                self.in_test = false;
            }
            return true;
        }
        let mut is_test = false;
        if self.pending {
            is_test = true;
            if opens > 0 {
                self.pending = false;
                self.depth = opens - closes;
                self.in_test = self.depth > 0;
            }
        }
        if code.contains("#[cfg(test)]") {
            self.pending = true;
            is_test = true;
        }
        is_test
    }
}

/// Lint one file: per-line determinism rules plus the ratchet counts.
/// Budgets are only accumulated for non-test library code (`is_test_file`
/// files contribute zero).
pub fn lint_file(ctx: &FileCtx<'_>, content: &str) -> (Vec<Finding>, Budget) {
    let mut findings = Vec::new();
    let mut budget = Budget::default();
    let mut regions = TestRegions::default();
    let lines: Vec<&str> = content.lines().collect();
    let mut splitter = LineSplitter::default();
    let split: Vec<(String, String)> = lines.iter().map(|l| splitter.split(l)).collect();

    let sim_path = SIM_PATH_CRATES.contains(&ctx.crate_name);
    // Brace-depth tracking for the doc-coverage exemption of trait-impl
    // blocks (`impl Trait for Type { ... }`): rustdoc attributes their
    // methods to the trait's docs, so they carry no doc comment here.
    let mut depth = 0i64;
    let mut trait_impl_floor: Option<i64> = None;
    let flag = |findings: &mut Vec<Finding>, idx: usize, rule: &'static str, msg: String| {
        // The annotation may ride the offending line or sit alone on the
        // comment-only lines directly above it (a multi-line `/* */`
        // block included).
        let here = allow_in(&split[idx].1, rule);
        let mut above = None;
        let mut j = idx;
        while above.is_none() && j > 0 && split[j - 1].0.trim().is_empty() {
            j -= 1;
            above = allow_in(&split[j].1, rule);
            // A line with no comment at all ends the annotation window; a
            // whitespace-only comment part (e.g. the `*/` line of a block)
            // keeps the walk going.
            if split[j].1.is_empty() {
                break;
            }
        }
        match here.or(above) {
            Some(true) => {}
            Some(false) => findings.push(Finding {
                file: ctx.rel_path.to_string(),
                line: idx + 1,
                rule,
                msg: format!("allow({rule}) annotation needs a justification: {msg}"),
            }),
            None => {
                findings.push(Finding { file: ctx.rel_path.to_string(), line: idx + 1, rule, msg })
            }
        }
    };

    for idx in 0..lines.len() {
        let (code, _) = &split[idx];
        let in_test_region = regions.feed(code);
        let is_test = ctx.is_test_file || in_test_region;

        // nondet-map: applies to test code too — a set iterated in a test
        // can make the test itself flaky.
        if sim_path
            && code.contains("std::collections::")
            && (code.contains("HashMap") || code.contains("HashSet"))
        {
            flag(
                &mut findings,
                idx,
                "nondet-map",
                "std HashMap/HashSet iteration order is randomized per process; use \
                 FxHashMap/FxHashSet from openoptics_sim::hash or a BTreeMap/BTreeSet"
                    .into(),
            );
        }

        // wall-clock: sim logic must never read the host clock or an
        // unseeded RNG. The bench harness measures real time by design.
        if !is_test && ctx.crate_name != "openoptics-bench" {
            let wall = code.contains("Instant::now")
                || code.contains("SystemTime::now")
                || code.contains("thread_rng")
                || (code.contains("std::time::")
                    && (code.contains("Instant") || code.contains("SystemTime")));
            if wall {
                flag(
                    &mut findings,
                    idx,
                    "wall-clock",
                    "wall-clock time / unseeded randomness in simulation code; use SimTime \
                     and the seeded SimRng"
                        .into(),
                );
            }
        }

        // shared-mutable: the sharded engine's determinism argument rests
        // on domains exchanging state only through outbox messages merged
        // at the epoch barrier. A lock or interior-mutability cell in a
        // domain-execution module reintroduces scheduling-order-dependent
        // state, the exact failure mode the design rules out.
        if sim_path
            && !is_test
            && DOMAIN_EXECUTION_MODULES.iter().any(|m| ctx.rel_path.ends_with(m))
            && (code.contains("Mutex") || code.contains("RwLock") || code.contains("RefCell"))
        {
            flag(
                &mut findings,
                idx,
                "shared-mutable",
                "Mutex/RwLock/RefCell in a domain-execution module; domains communicate \
                 by message passing (Outbox merged at the epoch barrier) only"
                    .into(),
            );
        }

        // relaxed-ordering: cross-thread counters need acquire/release.
        if code.contains("Ordering::Relaxed") {
            flag(
                &mut findings,
                idx,
                "relaxed-ordering",
                "Ordering::Relaxed on shared atomics; use Acquire/Release/AcqRel so \
                 cross-thread counter reads are well-defined"
                    .into(),
            );
        }

        // arch-compose: dispatch/pause policy is owned by the Architecture
        // descriptor (`with_dispatch`/`with_pause` feeding
        // `install_policies`); a direct field assignment anywhere else
        // bypasses the composition API and silently diverges from what
        // `deploy` would install. `congestion.policy` (the switch-level
        // CongestionPolicy knob) is a different field and stays free.
        if ctx.rel_path != "crates/core/src/arch.rs"
            && (code.contains(".pause_mode = ")
                || (code.contains(".policy = ") && !code.contains("congestion.policy")))
        {
            flag(
                &mut findings,
                idx,
                "arch-compose",
                "direct DispatchPolicy/PauseMode assignment outside the Architecture \
                 descriptor module; compose via Architecture::with_dispatch/with_pause \
                 and OpenOpticsNet::deploy"
                    .into(),
            );
        }

        // bool-api: core's public API reports failure as Result, not bool.
        if ctx.crate_name == "openoptics-core" && !is_test && code.contains("pub fn ") {
            let mut sig = String::new();
            for (c, _) in split.iter().skip(idx).take(8) {
                sig.push_str(c);
                sig.push(' ');
                if c.contains('{') || c.contains(';') {
                    break;
                }
            }
            if let Some(ret) = sig.split("->").nth(1) {
                let ret = ret.trim();
                if ret.starts_with("bool") {
                    let name = sig
                        .split("pub fn ")
                        .nth(1)
                        .unwrap_or("")
                        .split(['(', '<', ' '])
                        .next()
                        .unwrap_or("");
                    if !PREDICATE_PREFIXES.iter().any(|p| name.starts_with(p)) {
                        flag(
                            &mut findings,
                            idx,
                            "bool-api",
                            format!(
                                "public fn `{name}` returns bool; core API failures must be \
                                 Result<_, Error> (predicates may be named is_*/has_*/...)"
                            ),
                        );
                    }
                }
            }
        }

        // doc-coverage: a `pub` item in library source needs a doc comment
        // (or a `#[doc = ...]` attribute) right above it. Attribute lines
        // between the docs and the item are skipped.
        let trimmed = code.trim_start();
        if !is_test
            && trait_impl_floor.is_none()
            && PUB_ITEMS.iter().any(|p| trimmed.starts_with(p))
        {
            let mut documented = false;
            let mut j = idx;
            while j > 0 {
                j -= 1;
                let raw = lines[j].trim_start();
                if raw.starts_with("#[doc") || raw.starts_with("#![doc") {
                    documented = true;
                    break;
                }
                if raw.starts_with("#[") || raw == ")]" {
                    continue;
                }
                documented = raw.starts_with("///");
                break;
            }
            if !documented {
                budget.undocumented += 1;
            }
        }
        if trait_impl_floor.is_none() && trimmed.starts_with("impl") && code.contains(" for ") {
            trait_impl_floor = Some(depth);
        }
        depth += code.matches('{').count() as i64 - code.matches('}').count() as i64;
        if let Some(floor) = trait_impl_floor {
            if depth <= floor && code.contains('}') {
                trait_impl_floor = None;
            }
        }

        // Ratchet counts: all first-party code, tests included. The budget
        // is per-crate and per-category, so an unwrap->expect conversion
        // shows up as the unwrap count falling.
        budget.unwraps += code.matches(".unwrap()").count();
        budget.expects += code.matches(".expect(").count();
        budget.panics += code.matches("panic!(").count();
        // numeric-cast: silent truncation is a determinism hazard only
        // where the numbers feed simulated behavior.
        if sim_path {
            budget.narrowing_casts += narrowing_casts_in(code);
        }
    }
    (findings, budget)
}

/// One `span_begin`/`span_end` call site with a literal `Stage::` argument,
/// collected per crate for the `span-paired` rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSite {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Stage identifier (`Flow`, `CalendarWait`, ...).
    pub stage: String,
    /// Whether the call opens the span (`span_begin`) or closes it.
    pub is_begin: bool,
}

/// First `Stage::Ident` literal at or after byte offset `from` in `code`.
fn stage_literal_after(code: &str, from: usize) -> Option<String> {
    let pos = code.get(from..)?.find("Stage::")? + from + "Stage::".len();
    let ident: String =
        code[pos..].chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

/// Collect `span_begin`/`span_end` call sites with literal stages from one
/// file. Definitions (`fn span_begin`) are skipped, calls whose stage is a
/// variable are exempt (dynamic closes), and an
/// `// oolint: allow(span-paired, reason)` annotation drops the site. The
/// returned findings are malformed annotations only; pairing itself is
/// checked per crate by [`check_span_pairing`].
pub fn collect_span_sites(ctx: &FileCtx<'_>, content: &str) -> (Vec<Finding>, Vec<SpanSite>) {
    let mut findings = Vec::new();
    let mut sites = Vec::new();
    let split: Vec<(String, String)> = content.lines().map(split_code_comment).collect();
    for idx in 0..split.len() {
        let code = &split[idx].0;
        for (needle, is_begin) in [("span_begin(", true), ("span_end(", false)] {
            let Some(call) = code.find(needle) else { continue };
            // Skip the API definitions in openoptics-obs itself.
            if code.contains("fn span_begin") || code.contains("fn span_end") {
                continue;
            }
            // The stage argument rides the call line, or — for a call
            // whose argument list spans lines (no `;` yet) — one of the
            // next three. No literal found means the stage is a variable:
            // a dynamic close, exempt by design.
            let mut stage = stage_literal_after(code, call + needle.len());
            if stage.is_none() && !code[call..].contains(';') {
                for next in split.iter().skip(idx + 1).take(3) {
                    stage = stage_literal_after(&next.0, 0);
                    if stage.is_some() || next.0.contains(';') {
                        break;
                    }
                }
            }
            let Some(stage) = stage else { continue };
            let here = allow_in(&split[idx].1, "span-paired");
            let above = if idx > 0 && split[idx - 1].0.trim().is_empty() {
                allow_in(&split[idx - 1].1, "span-paired")
            } else {
                None
            };
            match here.or(above) {
                Some(true) => continue,
                Some(false) => findings.push(Finding {
                    file: ctx.rel_path.to_string(),
                    line: idx + 1,
                    rule: "span-paired",
                    msg: "allow(span-paired) annotation needs a justification".into(),
                }),
                None => {}
            }
            sites.push(SpanSite { file: ctx.rel_path.to_string(), line: idx + 1, stage, is_begin });
        }
    }
    (findings, sites)
}

/// Pairing check over one crate's collected [`SpanSite`]s: every begun
/// literal stage needs at least one literal `span_end` for the same stage
/// somewhere in the crate.
pub fn check_span_pairing(crate_name: &str, sites: &[SpanSite]) -> Vec<Finding> {
    let ends: std::collections::BTreeSet<&str> =
        sites.iter().filter(|s| !s.is_begin).map(|s| s.stage.as_str()).collect();
    let mut findings = Vec::new();
    for s in sites.iter().filter(|s| s.is_begin) {
        if !ends.contains(s.stage.as_str()) {
            findings.push(Finding {
                file: s.file.clone(),
                line: s.line,
                rule: "span-paired",
                msg: format!(
                    "span_begin(Stage::{stage}) has no span_end(Stage::{stage}) anywhere in \
                     crate {crate_name}; every begun stage needs a close path (dynamic closes \
                     via a variable stage are exempt)",
                    stage = s.stage
                ),
            });
        }
    }
    findings
}

/// Completeness check: every `TraceKind` variant must appear in at least
/// two match arms outside the enum definition (the `name()` mapping and the
/// `to_json()` field renderer).
pub fn check_trace_completeness(rel_path: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let mut variants: Vec<(String, usize)> = Vec::new();
    let mut depth = 0i64;
    let mut in_enum = false;
    let mut enum_lines = vec![false; lines.len()];
    for (idx, line) in lines.iter().enumerate() {
        let (code, _) = split_code_comment(line);
        if !in_enum {
            if code.contains("pub enum TraceKind") {
                in_enum = true;
                depth = code.matches('{').count() as i64 - code.matches('}').count() as i64;
                enum_lines[idx] = true;
            }
            continue;
        }
        enum_lines[idx] = true;
        if depth == 1 {
            let t = code.trim();
            if t.starts_with(|c: char| c.is_ascii_uppercase()) {
                let name: String =
                    t.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
                if !name.is_empty() {
                    variants.push((name, idx + 1));
                }
            }
        }
        depth += code.matches('{').count() as i64 - code.matches('}').count() as i64;
        if depth <= 0 {
            in_enum = false;
        }
    }
    if variants.is_empty() {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: 1,
            rule: "trace-complete",
            msg: "could not locate `pub enum TraceKind` variants".into(),
        });
        return findings;
    }
    for (name, line) in variants {
        let needle = format!("TraceKind::{name}");
        let mut refs = 0usize;
        for (idx, l) in lines.iter().enumerate() {
            if enum_lines[idx] {
                continue;
            }
            for (pos, _) in l.match_indices(&needle) {
                // Reject prefix matches (e.g. `FlowPause` vs `FlowPauseX`).
                let after = l[pos + needle.len()..].chars().next();
                if !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                    refs += 1;
                }
            }
        }
        if refs < 2 {
            findings.push(Finding {
                file: rel_path.to_string(),
                line,
                rule: "trace-complete",
                msg: format!(
                    "TraceKind::{name} has {refs} match-arm reference(s) outside the enum; \
                     every event kind needs a name() arm and a to_json() arm"
                ),
            });
        }
    }
    findings
}

/// Parse `lint-ratchet.toml` (a flat `[crate]` / `key = n` subset of TOML).
pub fn parse_ratchet(content: &str) -> BTreeMap<String, Budget> {
    let mut map = BTreeMap::new();
    let mut current: Option<String> = None;
    for line in content.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if let Some(name) = t.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            current = Some(name.trim().to_string());
            map.entry(name.trim().to_string()).or_insert_with(Budget::default);
            continue;
        }
        let Some(crate_name) = &current else { continue };
        let mut kv = t.splitn(2, '=');
        let (k, v) = (kv.next().unwrap_or("").trim(), kv.next().unwrap_or("").trim());
        let Ok(n) = v.parse::<usize>() else { continue };
        let b = map.entry(crate_name.clone()).or_insert_with(Budget::default);
        match k {
            "unwraps" => b.unwraps = n,
            "expects" => b.expects = n,
            "panics" => b.panics = n,
            "undocumented" => b.undocumented = n,
            "narrowing_casts" => b.narrowing_casts = n,
            _ => {}
        }
    }
    map
}

/// Render ratchet budgets back to the committed TOML format.
pub fn render_ratchet(budgets: &BTreeMap<String, Budget>) -> String {
    let mut out = String::from(
        "# oolint ratchet: counted budgets for panic-prone constructs in first-party\n\
         # code (tests included; vendored stand-ins exempt). CI fails when any count\n\
         # rises above its budget; after lowering a count, run\n\
         # `cargo run -p xtask -- lint --update` to lock the improvement in. Do not\n\
         # raise numbers by hand — convert the call site to Result<_, Error> or a\n\
         # documented `expect` instead. `undocumented` counts public items in\n\
         # library sources without a doc comment (doc-coverage): document the\n\
         # item, don't bump the number. `narrowing_casts` counts `as` casts to\n\
         # narrower numeric types in sim-path crates (numeric-cast): use the\n\
         # openoptics_sim::cast checked helpers or try_into instead.\n",
    );
    for (name, b) in budgets {
        out.push_str(&format!(
            "\n[{name}]\nunwraps = {}\nexpects = {}\npanics = {}\nundocumented = {}\n\
             narrowing_casts = {}\n",
            b.unwraps, b.expects, b.panics, b.undocumented, b.narrowing_casts
        ));
    }
    out
}

/// Compare measured counts against the committed budgets. Any rise is a
/// finding; crates absent from the file have a zero budget (run `--update`
/// to seed them).
pub fn compare_ratchet(
    budgets: &BTreeMap<String, Budget>,
    counts: &BTreeMap<String, Budget>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, got) in counts {
        let budget = budgets.get(name).copied().unwrap_or_default();
        let missing = !budgets.contains_key(name);
        for (what, got_n, max_n) in [
            ("unwraps", got.unwraps, budget.unwraps),
            ("expects", got.expects, budget.expects),
            ("panics", got.panics, budget.panics),
            ("undocumented", got.undocumented, budget.undocumented),
            ("narrowing_casts", got.narrowing_casts, budget.narrowing_casts),
        ] {
            if got_n > max_n {
                let hint = if missing {
                    " (crate missing from lint-ratchet.toml; run `cargo run -p xtask -- lint \
                     --update` to seed it)"
                } else {
                    ""
                };
                let advice = match what {
                    "undocumented" => "document the new public items (///)",
                    "narrowing_casts" => {
                        "use the openoptics_sim::cast checked helpers or try_into instead of \
                         a narrowing `as` cast"
                    }
                    _ => "convert the new call sites to Result<_, Error> or a documented expect",
                };
                findings.push(Finding {
                    file: "lint-ratchet.toml".into(),
                    line: 1,
                    rule: "ratchet",
                    msg: format!("{name}: {what} rose to {got_n} (budget {max_n}); {advice}{hint}"),
                });
            }
        }
    }
    findings
}

/// One experiment row parsed from a `BENCH_engine.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Experiment id (`fig8a`, `table3`, ...).
    pub id: String,
    /// Events scheduled during the experiment.
    pub events: u64,
    /// Wall-clock duration of the experiment, seconds.
    pub wall_s: f64,
    /// Engine throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Whether the experiment is analytic: it runs no simulation, so its
    /// throughput carries no signal and is exempt from the regression gate.
    pub analytic: bool,
    /// Cumulative SLO burn rate (per-mille of error budget) when the
    /// experiment reports one (`experiments slo`). Gated only when both
    /// reports carry the field — higher is worse.
    pub slo_burn_milli: Option<f64>,
    /// p99.9 service latency in µs when the experiment reports one.
    /// Gated only when both reports carry the field — higher is worse.
    pub p999_us: Option<f64>,
}

/// String value of `"key": "..."` inside one flattened JSON object.
fn field_str(obj: &str, key: &str) -> Option<String> {
    let k = format!("\"{key}\"");
    let pos = obj.find(&k)? + k.len();
    let rest = obj[pos..].trim_start().strip_prefix(':')?.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Numeric value of `"key": n` inside one flattened JSON object.
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let k = format!("\"{key}\"");
    let pos = obj.find(&k)? + k.len();
    let rest = obj[pos..].trim_start().strip_prefix(':')?.trim_start();
    let num: String =
        rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    num.parse().ok()
}

/// Parse the `experiments` array of a `BENCH_engine.json` report (the
/// format written by the `openoptics-bench` `experiments` binary). A
/// deliberately small hand parser — the report is first-party and flat —
/// so the gate builds offline with no JSON dependency.
pub fn parse_bench_json(content: &str) -> Result<Vec<BenchRow>, String> {
    let start = content.find("\"experiments\"").ok_or("no \"experiments\" key")?;
    let rest = &content[start..];
    let open = rest.find('[').ok_or("no experiments array")?;
    let close = rest.find(']').ok_or("unterminated experiments array")?;
    if close < open {
        return Err("malformed experiments array".into());
    }
    let mut rows = Vec::new();
    for obj in rest[open + 1..close].split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        let id = field_str(obj, "id").ok_or_else(|| format!("experiment without id: {obj:?}"))?;
        rows.push(BenchRow {
            id,
            events: field_num(obj, "events").unwrap_or(0.0).max(0.0) as u64,
            wall_s: field_num(obj, "wall_s").unwrap_or(0.0).max(0.0),
            events_per_sec: field_num(obj, "events_per_sec").unwrap_or(0.0),
            analytic: obj.contains("\"analytic\": true") || obj.contains("\"analytic\":true"),
            slo_burn_milli: field_num(obj, "slo_burn_milli"),
            p999_us: field_num(obj, "p999_us"),
        });
    }
    Ok(rows)
}

/// Outcome of comparing two bench reports.
pub struct BenchDiffOutcome {
    /// Human-readable comparison lines, one per experiment.
    pub lines: Vec<String>,
    /// Regressions (and missing experiments) beyond what the gate allows.
    pub failures: Vec<String>,
    /// One-line digest (`--summary` mode): aggregate throughput movement
    /// plus the worst per-experiment delta.
    pub summary: String,
}

/// Aggregate engine throughput of a report: total events over total wall
/// time, simulation experiments only (analytic rows run no engine and
/// would dilute the figure with pure-arithmetic wall time).
fn aggregate_events_per_sec(rows: &[BenchRow]) -> f64 {
    let (events, wall) = rows
        .iter()
        .filter(|r| !r.analytic && r.events > 0)
        .fold((0u64, 0f64), |(e, w), r| (e + r.events, w + r.wall_s));
    if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    }
}

/// Compare engine throughput between an `old` (baseline) and `new`
/// `BENCH_engine.json` report, per experiment *and* in aggregate (total
/// events over total wall across simulation experiments — the suite-level
/// figure the parallel engine is accountable to). Analytic experiments
/// and rows with zero events on either side are reported but not gated; a
/// throughput drop of more than `max_regress_pct` percent — per
/// experiment or aggregate — or an experiment vanishing from the new
/// report is a failure.
pub fn bench_diff(old: &[BenchRow], new: &[BenchRow], max_regress_pct: f64) -> BenchDiffOutcome {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    let mut worst: Option<(&str, f64)> = None;
    for o in old {
        let Some(n) = new.iter().find(|n| n.id == o.id) else {
            // Sweep cells come and go with the grid (`experiments sweep`
            // writes them; `experiments all` does not) — their absence is
            // informational, not a regression.
            if o.id.starts_with("sweep:") {
                lines.push(format!("{:<10} sweep cell absent from new report (not gated)", o.id));
            } else {
                failures.push(format!("{}: present in baseline but missing from new report", o.id));
            }
            continue;
        };
        // SLO cells gate independently of throughput: when both reports
        // carry a quality field, a rise beyond the allowance is a failure
        // (higher burn / higher tail latency is worse).
        for (key, ov, nv) in [
            ("slo_burn_milli", o.slo_burn_milli, n.slo_burn_milli),
            ("p999_us", o.p999_us, n.p999_us),
        ] {
            let (Some(ov), Some(nv)) = (ov, nv) else { continue };
            let (delta_pct, regressed) = if ov > 0.0 {
                let d = (nv / ov - 1.0) * 100.0;
                (d, d > max_regress_pct)
            } else {
                (0.0, nv > 0.0)
            };
            lines.push(format!(
                "{:<10} {key} {ov:.0} -> {nv:.0} ({delta_pct:+.1}%){}",
                o.id,
                if regressed { "  REGRESSED" } else { "" }
            ));
            if regressed {
                failures.push(format!(
                    "{}: {key} rose from {ov:.0} to {nv:.0} (allowed {max_regress_pct}%)",
                    o.id
                ));
            }
        }
        if o.analytic || n.analytic || o.events == 0 || n.events == 0 || o.events_per_sec <= 0.0 {
            lines.push(format!("{:<10} skipped (analytic or no engine events)", o.id));
            continue;
        }
        let delta_pct = (n.events_per_sec / o.events_per_sec - 1.0) * 100.0;
        if worst.is_none_or(|(_, w)| delta_pct < w) {
            worst = Some((&o.id, delta_pct));
        }
        let regressed = -delta_pct > max_regress_pct;
        lines.push(format!(
            "{:<10} {:>12.0} -> {:>12.0} events/s ({:+.1}%){}",
            o.id,
            o.events_per_sec,
            n.events_per_sec,
            delta_pct,
            if regressed { "  REGRESSED" } else { "" }
        ));
        if regressed {
            failures.push(format!(
                "{}: events/sec fell {:.1}% (from {:.0} to {:.0}; allowed {max_regress_pct}%)",
                o.id, -delta_pct, o.events_per_sec, n.events_per_sec
            ));
        }
    }
    for n in new {
        if !old.iter().any(|o| o.id == n.id) {
            lines.push(format!("{:<10} new experiment (no baseline)", n.id));
        }
    }
    // The suite-level gate: aggregate throughput must hold up even when
    // every per-experiment drop individually stays inside the allowance.
    let old_agg = aggregate_events_per_sec(old);
    let new_agg = aggregate_events_per_sec(new);
    let agg_delta_pct = if old_agg > 0.0 { (new_agg / old_agg - 1.0) * 100.0 } else { 0.0 };
    let agg_regressed = old_agg > 0.0 && -agg_delta_pct > max_regress_pct;
    lines.push(format!(
        "{:<10} {:>12.0} -> {:>12.0} events/s ({:+.1}%){}",
        "aggregate",
        old_agg,
        new_agg,
        agg_delta_pct,
        if agg_regressed { "  REGRESSED" } else { "" }
    ));
    if agg_regressed {
        failures.push(format!(
            "aggregate: events/sec fell {:.1}% (from {:.0} to {:.0}; allowed {max_regress_pct}%)",
            -agg_delta_pct, old_agg, new_agg
        ));
    }
    let summary = format!(
        "aggregate {:.2}M -> {:.2}M events/s ({:+.1}%); worst {}; {} failure(s)",
        old_agg / 1e6,
        new_agg / 1e6,
        agg_delta_pct,
        worst.map_or("n/a".to_string(), |(id, d)| format!("{id} {d:+.1}%")),
        failures.len(),
    );
    BenchDiffOutcome { lines, failures, summary }
}

/// Recursively collect `.rs` files under `dir` (skipping `target/`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().collect();
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" {
                continue;
            }
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Package name from a crate directory's `Cargo.toml`.
fn package_name(crate_dir: &Path) -> std::io::Result<String> {
    let manifest = std::fs::read_to_string(crate_dir.join("Cargo.toml"))?;
    for line in manifest.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(v) = rest.strip_prefix('=') {
                return Ok(v.trim().trim_matches('"').to_string());
            }
        }
    }
    Ok(crate_dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default())
}

/// Result of a full workspace lint.
pub struct LintOutcome {
    /// All violations, in path order.
    pub findings: Vec<Finding>,
    /// Measured per-crate budgets.
    pub counts: BTreeMap<String, Budget>,
}

/// Lint the workspace rooted at `root`. When `update` is set the ratchet
/// file is rewritten with the measured counts (and ratchet comparisons are
/// skipped — the file now matches by construction).
pub fn run_lint(root: &Path, update: bool) -> std::io::Result<LintOutcome> {
    let mut findings = Vec::new();
    let mut counts: BTreeMap<String, Budget> = BTreeMap::new();

    // Crate directories: every `crates/*` member except the linter itself
    // (its sources quote the banned patterns as string literals), plus the
    // root `openoptics` package. `vendor/` stand-ins are third-party code.
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> =
            std::fs::read_dir(&crates)?.collect::<Result<Vec<_>, _>>()?.into_iter().collect();
        entries.sort_by_key(|e| e.path());
        for e in entries {
            if e.path().is_dir() && e.file_name() != "xtask" {
                crate_dirs.push(e.path());
            }
        }
    }
    crate_dirs.push(root.to_path_buf());

    for dir in &crate_dirs {
        let name = package_name(dir)?;
        let budget = counts.entry(name.clone()).or_default();
        let mut span_sites: Vec<SpanSite> = Vec::new();
        let subdirs: &[&str] =
            if *dir == root { &["src", "tests", "examples"] } else { &["src", "tests", "benches"] };
        for sub in subdirs {
            let mut files = Vec::new();
            collect_rs(&dir.join(sub), &mut files)?;
            for f in files {
                let rel = f.strip_prefix(root).unwrap_or(&f).to_string_lossy().into_owned();
                let is_test_file = *sub != "src";
                let content = std::fs::read_to_string(&f)?;
                let ctx = FileCtx { crate_name: &name, rel_path: &rel, is_test_file };
                let (mut fs, b) = lint_file(&ctx, &content);
                findings.append(&mut fs);
                budget.unwraps += b.unwraps;
                budget.expects += b.expects;
                budget.panics += b.panics;
                budget.undocumented += b.undocumented;
                budget.narrowing_casts += b.narrowing_casts;
                if rel.ends_with("telemetry/src/trace.rs") {
                    findings.append(&mut check_trace_completeness(&rel, &content));
                }
                let (mut sf, mut ss) = collect_span_sites(&ctx, &content);
                findings.append(&mut sf);
                span_sites.append(&mut ss);
            }
        }
        findings.extend(check_span_pairing(&name, &span_sites));
    }

    let ratchet_path = root.join("lint-ratchet.toml");
    if update {
        std::fs::write(&ratchet_path, render_ratchet(&counts))?;
    } else {
        let budgets = match std::fs::read_to_string(&ratchet_path) {
            Ok(s) => parse_ratchet(&s),
            Err(_) => BTreeMap::new(),
        };
        findings.extend(compare_ratchet(&budgets, &counts));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintOutcome { findings, counts })
}

/// Run the flow-aware (oolint v2) pass over the workspace rooted at
/// `root`: lex and extract every first-party crate's library sources into
/// a cross-crate call graph, then apply the `graph-nondet` taint
/// reachability and `domain-send` structural rules. Test/bench/example
/// code is excluded — the graph models the shipped sim path.
pub fn run_graph_lint(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut ws = taint::TaintWorkspace::default();

    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> =
            std::fs::read_dir(&crates)?.collect::<Result<Vec<_>, _>>()?.into_iter().collect();
        entries.sort_by_key(|e| e.path());
        for e in entries {
            if e.path().is_dir() && e.file_name() != "xtask" {
                crate_dirs.push(e.path());
            }
        }
    }
    crate_dirs.push(root.to_path_buf());

    for dir in &crate_dirs {
        let name = package_name(dir)?;
        let mut files = Vec::new();
        collect_rs(&dir.join("src"), &mut files)?;
        for f in files {
            let rel = f.strip_prefix(root).unwrap_or(&f).to_string_lossy().into_owned();
            let content = std::fs::read_to_string(&f)?;
            let lexed = lex::lex(&content);
            ws.fns.extend(graph::extract(&name, &rel, &lexed));
            ws.comments.insert(rel, taint::FileComments::from_lexed(&lexed));
        }
    }

    let idx = taint::Index::build(&ws.fns);
    let mut findings = taint::taint_findings(&ws, &idx);
    findings.extend(taint::domain_send_findings(&ws, &idx));
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Rationale text for every rule, for `lint --explain <rule>`.
pub const RULE_EXPLANATIONS: &[(&str, &str)] = &[
    (
        "nondet-map",
        "std HashMap/HashSet randomize their SipHash keys per process, so iteration order \
         differs between runs. In a sim-path crate that breaks the byte-identical-exports \
         contract. Use FxHashMap/FxHashSet from openoptics_sim::hash, or BTreeMap/BTreeSet \
         where iteration order is observable.",
    ),
    (
        "wall-clock",
        "Instant::now/SystemTime::now/thread_rng read host state, so simulated behavior \
         would differ between runs and machines. Simulation time comes from SimTime; \
         randomness from the seeded SimRng. Only the bench harness measures real time.",
    ),
    (
        "relaxed-ordering",
        "Ordering::Relaxed gives no inter-thread ordering: counter reads in the parallel \
         runner would be schedule-dependent. Use Acquire/Release/AcqRel.",
    ),
    (
        "shared-mutable",
        "Mutex/RwLock/RefCell in a domain-execution module lets wall-clock scheduling \
         order back into simulated state. Domains exchange state only as Outbox messages \
         merged in (time, src, seq) order at the epoch barrier.",
    ),
    (
        "arch-compose",
        "DispatchPolicy/PauseMode may only be assigned in the Architecture descriptor \
         module; everything else composes via Architecture::with_dispatch/with_pause and \
         OpenOpticsNet::deploy, so a deployed network always matches its descriptor.",
    ),
    (
        "bool-api",
        "Public functions in openoptics-core report failure as Result<_, Error>, not bool \
         (is_*/has_*/... predicates exempt).",
    ),
    (
        "trace-complete",
        "Every TraceKind variant needs a name() arm and a to_json() arm; an unhandled \
         event kind would silently vanish from exports.",
    ),
    (
        "span-paired",
        "Every span_begin(Stage::X) with a literal stage needs a span_end(Stage::X) \
         somewhere in the crate; an unclosed lifecycle stage leaks open spans into every \
         export.",
    ),
    (
        "ratchet",
        "Counted budgets for unwrap/expect/panic and undocumented pub items, stored in \
         lint-ratchet.toml. Counts may only fall; `lint --update` locks improvements in.",
    ),
    (
        "doc-coverage",
        "Undocumented pub items in library sources count against the per-crate \
         `undocumented` ratchet budget; documentation coverage may only improve.",
    ),
    (
        "numeric-cast",
        "`as` casts to narrower numeric types (u64 as u32, f64 as f32, ...) silently \
         truncate; for sim-time nanoseconds that is a determinism hazard. Sim-path \
         crates count them against the per-crate `narrowing_casts` ratchet budget; new \
         sites use the openoptics_sim::cast checked helpers or try_into.",
    ),
    (
        "graph-nondet",
        "Flow-aware taint reachability over the cross-crate call graph: no call chain \
         from a sim-path entry point (engine run loops, DomainScheduler epoch execution, \
         deploy/reconfigure, fault injection) may reach a nondeterminism source (wall \
         clock, OS RNG, std HashMap/HashSet, Ordering::Relaxed, thread-id/env/fs reads, \
         float reductions in the parallel merge). Violations print the full chain; \
         `// oolint: allow(graph-nondet, why)` is honored at any hop.",
    ),
    (
        "domain-send",
        "Cross-domain emission must go through Outbox::send with a fire time provably \
         at or after the epoch lookahead bound — the conservative-PDES contract the \
         sharded engine's determinism rests on. The fire-time argument must reference \
         the epoch bound (epoch_end/lookahead) or be `now + <physical delay>`; anything \
         else needs `// oolint: allow(domain-send, why)`. This is the static counterpart \
         of the strict-invariants runtime assert, which only catches violations a given \
         seed happens to trigger.",
    ),
];

/// Explanation text for one rule, if it exists.
pub fn explain_rule(rule: &str) -> Option<&'static str> {
    RULE_EXPLANATIONS.iter().find(|(r, _)| *r == rule).map(|(_, e)| *e)
}

/// Escape a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as machine-readable JSON (for `lint --json`; CI uploads
/// this as an artifact).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"msg\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            json_escape(f.rule),
            json_escape(&f.msg)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(krate: &'a str, path: &'a str) -> FileCtx<'a> {
        FileCtx { crate_name: krate, rel_path: path, is_test_file: false }
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let (code, comment) = split_code_comment(r#"let x = "panic!(no)"; // .unwrap() here"#);
        assert!(!code.contains("panic!("));
        assert!(comment.contains(".unwrap()"));
        let (code, _) = split_code_comment("let c = '\"'; let d = 1;");
        assert!(code.contains("let d = 1;"));
    }

    #[test]
    fn nondet_map_flags_sim_path_only() {
        let src = "use std::collections::HashMap;\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nondet-map");
        let (f, _) = lint_file(&ctx("openoptics-telemetry", "a.rs"), src);
        assert!(f.is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_with_reason() {
        let allowed =
            "use std::collections::HashMap; // oolint: allow(nondet-map, never iterated)\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), allowed);
        assert!(f.is_empty(), "{f:?}");
        let above = "// oolint: allow(nondet-map, alias over deterministic hasher)\n\
                     use std::collections::HashMap;\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), above);
        assert!(f.is_empty(), "{f:?}");
        let bare = "use std::collections::HashMap; // oolint: allow(nondet-map)\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), bare);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("justification"), "{}", f[0].msg);
    }

    #[test]
    fn wall_clock_flagged_outside_bench() {
        let src = "let t0 = std::time::Instant::now();\n";
        let (f, _) = lint_file(&ctx("openoptics-host", "a.rs"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        let (f, _) = lint_file(&ctx("openoptics-bench", "a.rs"), src);
        assert!(f.is_empty());
        // Mentioning Instant in a doc comment is fine.
        let (f, _) = lint_file(&ctx("openoptics-host", "a.rs"), "/// Instant of the switch.\n");
        assert!(f.is_empty());
    }

    #[test]
    fn relaxed_ordering_flagged_everywhere() {
        let src = "x.store(1, Ordering::Relaxed);\n";
        let (f, _) = lint_file(&ctx("openoptics-bench", "a.rs"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "relaxed-ordering");
    }

    #[test]
    fn shared_mutable_flagged_in_domain_execution_modules() {
        let src = "let m = std::sync::Mutex::new(0);\n";
        let (f, _) = lint_file(&ctx("openoptics-sim", "crates/sim/src/domain.rs"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "shared-mutable");
        let (f, _) = lint_file(&ctx("openoptics-core", "crates/core/src/engine.rs"), src);
        assert_eq!(f.len(), 1, "{f:?}");
        // RefCell counts too.
        let (f, _) = lint_file(
            &ctx("openoptics-sim", "crates/sim/src/event.rs"),
            "use std::cell::RefCell;\n",
        );
        assert_eq!(f.len(), 1);
        // Other modules of sim-path crates are out of scope.
        let (f, _) = lint_file(&ctx("openoptics-sim", "crates/sim/src/rate.rs"), src);
        assert!(f.is_empty(), "{f:?}");
        // Non-sim-path crates (the bench harness pools results in locks).
        let (f, _) = lint_file(&ctx("openoptics-bench", "crates/bench/src/par.rs"), src);
        assert!(f.is_empty(), "{f:?}");
        // A justified allow suppresses it.
        let ok = "let m = std::sync::Mutex::new(0); \
                  // oolint: allow(shared-mutable, merge point outside the epoch loop)\n";
        let (f, _) = lint_file(&ctx("openoptics-sim", "crates/sim/src/domain.rs"), ok);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bool_api_exempts_predicates() {
        let bad = "pub fn connect(&mut self) -> bool {\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "bool-api");
        let pred = "pub fn is_ta(&self) -> bool {\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), pred);
        assert!(f.is_empty(), "{f:?}");
        // Multi-line signature.
        let multi = "pub fn deploy(\n    &mut self,\n    n: u32,\n) -> bool {\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), multi);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn ratchet_counts_tests_too_but_not_strings_or_comments() {
        let src = "fn a() { x.unwrap(); y.expect(\"b\"); }\n\
                   // x.unwrap() in a comment does not count\n\
                   fn s() { let m = \"panic!(in a string)\"; }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { z.unwrap(); panic!(\"tests count too\"); }\n\
                   }\n\
                   fn b() { panic!(\"real\"); }\n";
        let (_, b) = lint_file(&ctx("openoptics-sim", "a.rs"), src);
        assert_eq!(
            b,
            Budget { unwraps: 2, expects: 1, panics: 2, undocumented: 0, narrowing_casts: 0 }
        );
    }

    #[test]
    fn numeric_cast_counts_narrowing_in_sim_path_only() {
        let src = "let a = t as u32;\nlet b = t as u64;\nlet c = x as f32;\n\
                   let d = y as usize;\nlet e = (n as u16) + (m as u8);\n";
        let (_, b) = lint_file(&ctx("openoptics-core", "a.rs"), src);
        assert_eq!(b.narrowing_casts, 4, "{b:?}");
        // Non-sim-path crates are out of scope for the cast ratchet.
        let (_, b) = lint_file(&ctx("openoptics-bench", "a.rs"), src);
        assert_eq!(b.narrowing_casts, 0, "{b:?}");
        // Strings and comments never count.
        let quoted = "// u64 as u32 explained\nlet s = \"cast as u32\";\n";
        let (_, b) = lint_file(&ctx("openoptics-core", "a.rs"), quoted);
        assert_eq!(b.narrowing_casts, 0, "{b:?}");
    }

    #[test]
    fn allow_accepts_parens_in_justification_and_trailing_text() {
        let nested = "use std::collections::HashMap; \
                      // oolint: allow(nondet-map, O(1) lookup, never iterated)\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), nested);
        assert!(f.is_empty(), "{f:?}");
        let trailing = "use std::collections::HashMap; \
                        // oolint: allow(nondet-map, keyed lookups only) -- see DESIGN.md\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), trailing);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_recognized_in_block_comments() {
        // Single-line block comment on the flagged line.
        let inline = "use std::collections::HashMap; \
                      /* oolint: allow(nondet-map, never iterated) */\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), inline);
        assert!(f.is_empty(), "{f:?}");
        // Multi-line block comment above the flagged line: the annotation
        // rides one of its lines.
        let above = "/* Discussed in review:\n \
                        oolint: allow(nondet-map, alias over deterministic hasher)\n \
                     */\nuse std::collections::HashMap;\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), above);
        assert!(f.is_empty(), "{f:?}");
        // Code *inside* a block comment is not linted.
        let commented = "/*\nuse std::collections::HashMap;\n*/\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "a.rs"), commented);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn doc_coverage_counts_undocumented_pub_items() {
        // Documented items pass, attributes between docs and item are
        // skipped, and `#[doc = ...]` counts as documentation.
        let good = "/// Documented.\npub fn a() {}\n\
                    /// Documented.\n#[derive(Debug)]\npub struct S;\n\
                    #[doc = \"included\"]\npub mod m {}\n";
        let (_, b) = lint_file(&ctx("openoptics-core", "src/a.rs"), good);
        assert_eq!(b.undocumented, 0, "{b:?}");

        let bare = "pub fn a() {}\npub struct S;\npub use other::Thing;\n";
        let (_, b) = lint_file(&ctx("openoptics-core", "src/a.rs"), bare);
        assert_eq!(b.undocumented, 2, "pub use is exempt: {b:?}");

        // Trait-impl methods inherit the trait's docs; inherent-impl
        // methods do not.
        let impls = "impl fmt::Display for S {\n    pub fn undoc(&self) {}\n}\n\
                     impl S {\n    pub fn also_undoc(&self) {}\n}\n";
        let (_, b) = lint_file(&ctx("openoptics-core", "src/a.rs"), impls);
        assert_eq!(b.undocumented, 1, "{b:?}");

        // Test files and #[cfg(test)] regions contribute nothing.
        let (_, b) = lint_file(
            &FileCtx { crate_name: "openoptics-core", rel_path: "tests/a.rs", is_test_file: true },
            bare,
        );
        assert_eq!(b.undocumented, 0, "{b:?}");
        let in_mod = "#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n";
        let (_, b) = lint_file(&ctx("openoptics-core", "src/a.rs"), in_mod);
        assert_eq!(b.undocumented, 0, "{b:?}");
    }

    #[test]
    fn ratchet_round_trip_and_compare() {
        let mut counts = BTreeMap::new();
        counts.insert(
            "a".to_string(),
            Budget { unwraps: 2, expects: 1, panics: 0, undocumented: 4, narrowing_casts: 7 },
        );
        counts.insert(
            "b".to_string(),
            Budget { unwraps: 0, expects: 0, panics: 3, undocumented: 0, narrowing_casts: 0 },
        );
        let rendered = render_ratchet(&counts);
        assert_eq!(parse_ratchet(&rendered), counts);
        // Equal counts pass; a rise fails; a drop passes.
        assert!(compare_ratchet(&counts, &counts).is_empty());
        let mut worse = counts.clone();
        worse.get_mut("a").unwrap().unwraps = 3;
        let f = compare_ratchet(&counts, &worse);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("rose to 3"), "{}", f[0].msg);
        let mut better = counts.clone();
        better.get_mut("b").unwrap().panics = 0;
        assert!(compare_ratchet(&counts, &better).is_empty());
        // Unknown crate: zero budget.
        let mut extra = counts.clone();
        extra.insert(
            "c".to_string(),
            Budget { unwraps: 1, expects: 0, panics: 0, undocumented: 0, narrowing_casts: 0 },
        );
        let f = compare_ratchet(&counts, &extra);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("missing"), "{}", f[0].msg);
    }

    #[test]
    fn span_pairing_requires_matching_end() {
        let paired = "let s = spans.span_begin(now, 0, f, p, Stage::Rx, 0);\n\
                      spans.span_end(now, s, Stage::Rx);\n";
        let (f, sites) = collect_span_sites(&ctx("openoptics-core", "a.rs"), paired);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(sites.len(), 2);
        assert!(check_span_pairing("openoptics-core", &sites).is_empty());

        let unpaired = "let s = spans.span_begin(now, 0, f, p, Stage::Rx, 0);\n";
        let (_, sites) = collect_span_sites(&ctx("openoptics-core", "a.rs"), unpaired);
        let findings = check_span_pairing("openoptics-core", &sites);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "span-paired");
        assert!(findings[0].msg.contains("Stage::Rx"), "{}", findings[0].msg);
    }

    #[test]
    fn span_pairing_exempts_definitions_dynamic_and_allowed() {
        // The API definitions themselves are not call sites.
        let defs = "pub fn span_begin(&self, at: SimTime, stage: Stage) -> u64 {\n\
                    pub fn span_end(&self, at: SimTime, stage: Stage) {}\n";
        let (_, sites) = collect_span_sites(&ctx("openoptics-obs", "a.rs"), defs);
        assert!(sites.is_empty(), "{sites:?}");

        // A variable stage is a dynamic close: exempt, and a Stage literal
        // on a later line must not be misattributed to it.
        let dynamic = "spans.span_begin(now, 0, f, p, stage, 0);\n\
                       let x = Stage::Rx;\n";
        let (_, sites) = collect_span_sites(&ctx("openoptics-core", "a.rs"), dynamic);
        assert!(sites.is_empty(), "{sites:?}");

        // Multi-line calls find the stage on a following line.
        let multiline = "let s = spans.span_begin(\n    now, 0, f, p,\n    Stage::Rx,\n    0);\n";
        let (_, sites) = collect_span_sites(&ctx("openoptics-core", "a.rs"), multiline);
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert_eq!(sites[0].stage, "Rx");

        // An allow annotation with a reason drops the site; without one it
        // is a finding.
        let allowed = "spans.span_begin(now, 0, f, p, Stage::Rx, 0); \
                       // oolint: allow(span-paired, closed dynamically elsewhere)\n";
        let (f, sites) = collect_span_sites(&ctx("openoptics-core", "a.rs"), allowed);
        assert!(f.is_empty() && sites.is_empty(), "{f:?} {sites:?}");
        let bare = "spans.span_begin(now, 0, f, p, Stage::Rx, 0); // oolint: allow(span-paired)\n";
        let (f, _) = collect_span_sites(&ctx("openoptics-core", "a.rs"), bare);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("justification"), "{}", f[0].msg);
    }

    #[test]
    fn bench_json_parses_rows_and_analytic_flag() {
        let json = "{\n  \"jobs\": 1,\n  \"experiments\": [\n    \
                    {\"id\": \"fig8a\", \"wall_s\": 0.012, \"events\": 47932, \
                     \"events_per_sec\": 3979975},\n    \
                    {\"id\": \"fig11\", \"wall_s\": 0.001, \"events\": 0, \
                     \"events_per_sec\": 0, \"analytic\": true}\n  ]\n}\n";
        let rows = parse_bench_json(json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, "fig8a");
        assert_eq!(rows[0].events, 47932);
        assert!(!rows[0].analytic);
        assert!((rows[0].events_per_sec - 3979975.0).abs() < 0.5);
        assert_eq!(rows[1].id, "fig11");
        assert!(rows[1].analytic);
        assert!(parse_bench_json("{}").is_err());
    }

    #[test]
    fn bench_diff_gates_regressions_only() {
        let row = |id: &str, events: u64, eps: f64, analytic: bool| BenchRow {
            id: id.into(),
            events,
            wall_s: if eps > 0.0 { events as f64 / eps } else { 0.0 },
            events_per_sec: eps,
            analytic,
            slo_burn_milli: None,
            p999_us: None,
        };
        let old = vec![
            row("fig8a", 1000, 1000.0, false),
            row("fig9", 1000, 1000.0, false),
            row("fig11", 0, 0.0, true),
            row("gone", 10, 10.0, false),
        ];
        let new = vec![
            row("fig8a", 1000, 950.0, false), // -5%: within a 10% gate
            row("fig9", 1000, 800.0, false),  // -20%: regression
            row("fig11", 0, 0.0, true),       // analytic: never gated
            row("extra", 10, 10.0, false),    // new experiment: informational
        ];
        let out = bench_diff(&old, &new, 10.0);
        assert_eq!(out.failures.len(), 2, "{:?}", out.failures);
        assert!(out.failures.iter().any(|f| f.starts_with("fig9:")), "{:?}", out.failures);
        assert!(out.failures.iter().any(|f| f.starts_with("gone:")), "{:?}", out.failures);
        assert!(out.lines.iter().any(|l| l.contains("REGRESSED")), "{:?}", out.lines);
        assert!(out.lines.iter().any(|l| l.contains("skipped")), "{:?}", out.lines);
        assert!(out.lines.iter().any(|l| l.contains("new experiment")), "{:?}", out.lines);
        assert!(out.lines.iter().any(|l| l.starts_with("aggregate")), "{:?}", out.lines);
        assert!(out.summary.contains("worst fig9"), "{}", out.summary);
        // Improvements and within-gate noise pass.
        assert!(bench_diff(&new[..1], &old[..1], 10.0).failures.is_empty());
    }

    #[test]
    fn bench_diff_sweep_cells_are_notes_not_failures() {
        let row = |id: &str, events: u64, eps: f64| BenchRow {
            id: id.into(),
            events,
            wall_s: if eps > 0.0 { events as f64 / eps } else { 0.0 },
            events_per_sec: eps,
            analytic: false,
            slo_burn_milli: None,
            p999_us: None,
        };
        // Baseline carries sweep cells; the new report (an `experiments
        // all` run) has none of them — informational, not a failure.
        let old = vec![row("fig8a", 1000, 1000.0), row("sweep:rotornetxvlb@0.4/none", 500, 500.0)];
        let new = vec![row("fig8a", 1000, 1000.0)];
        let out = bench_diff(&old, &new, 10.0);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.lines.iter().any(|l| l.contains("sweep cell absent")), "{:?}", out.lines);
        // A sweep cell present on both sides still gates like any other row
        // (here the -80% cell drags the aggregate under the gate too).
        let slow = vec![row("fig8a", 1000, 1000.0), row("sweep:rotornetxvlb@0.4/none", 500, 100.0)];
        let out = bench_diff(&old, &slow, 10.0);
        assert!(out.failures.iter().any(|f| f.starts_with("sweep:")), "{:?}", out.failures);
    }

    #[test]
    fn bench_diff_gates_slo_fields_when_present_on_both_sides() {
        let row = |id: &str, burn: Option<f64>, p999: Option<f64>| BenchRow {
            id: id.into(),
            events: 1000,
            wall_s: 1.0,
            events_per_sec: 1000.0,
            analytic: false,
            slo_burn_milli: burn,
            p999_us: p999,
        };
        // Both sides carry the fields: a rise beyond the gate fails, a
        // within-gate wobble and the latency column holding steady pass.
        let old = vec![row("slo", Some(100.0), Some(200.0))];
        let new = vec![row("slo", Some(150.0), Some(205.0))];
        let out = bench_diff(&old, &new, 10.0);
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);
        assert!(out.failures[0].contains("slo_burn_milli"), "{:?}", out.failures);
        assert!(out.lines.iter().any(|l| l.contains("p999_us")), "{:?}", out.lines);
        // Burn appearing where the baseline had zero is a regression even
        // though the relative delta is undefined.
        let out = bench_diff(&[row("slo", Some(0.0), None)], &[row("slo", Some(5.0), None)], 10.0);
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);
        // A field absent on either side is never gated (old baselines
        // predate the slo experiment).
        let out = bench_diff(&[row("slo", None, None)], &new, 10.0);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        // Improvement passes.
        let out = bench_diff(&new, &old, 10.0);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn bench_json_parses_slo_fields() {
        let json = "{\n  \"experiments\": [\n    \
                     {\"id\": \"slo\", \"wall_s\": 0.1, \"events\": 9, \
                      \"events_per_sec\": 90, \"slo_burn_milli\": 151, \"p999_us\": 106}\n  ]\n}\n";
        let rows = parse_bench_json(json).unwrap();
        assert_eq!(rows[0].slo_burn_milli, Some(151.0));
        assert_eq!(rows[0].p999_us, Some(106.0));
    }

    #[test]
    fn arch_compose_flags_policy_assignment_outside_descriptor() {
        let bad = "net.engine.policy = DispatchPolicy::HybridDirect;\n\
                   net.engine.pause_mode = PauseMode::DirectCircuit;\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "crates/core/src/net.rs"), bad);
        assert_eq!(f.iter().filter(|x| x.rule == "arch-compose").count(), 2, "{f:?}");
        // The descriptor module itself is the one sanctioned site.
        let (f, _) = lint_file(&ctx("openoptics-core", "crates/core/src/arch.rs"), bad);
        assert!(f.iter().all(|x| x.rule != "arch-compose"), "{f:?}");
        // The switch-level congestion knob is a different field.
        let knob = "c.congestion.policy = CongestionPolicy::Trim;\n";
        let (f, _) = lint_file(&ctx("openoptics-switch", "crates/switch/src/tor.rs"), knob);
        assert!(f.iter().all(|x| x.rule != "arch-compose"), "{f:?}");
        // Suppressible with a justification, like every rule.
        let allowed = "fresh.policy = self.engine.policy; \
                       // oolint: allow(arch-compose, carrying forward)\n";
        let (f, _) = lint_file(&ctx("openoptics-core", "crates/core/src/net.rs"), allowed);
        assert!(f.iter().all(|x| x.rule != "arch-compose"), "{f:?}");
    }

    #[test]
    fn bench_diff_aggregate_catches_compounding_drops() {
        // The aggregate gate weights experiments by wall time, so one slow
        // experiment ballooning drags the suite figure down far more than
        // the per-experiment average suggests.
        let row = |id: &str, events: u64, wall_s: f64| BenchRow {
            id: id.into(),
            events,
            wall_s,
            events_per_sec: events as f64 / wall_s,
            analytic: false,
            slo_burn_milli: None,
            p999_us: None,
        };
        let old = vec![row("a", 1_000_000, 0.1), row("b", 1_000_000, 1.0)];
        // "a" unchanged; "b" slows 3x: b's own delta (-66%) fails, and so
        // does the aggregate (1.82M -> 0.65M events/s).
        let new = vec![row("a", 1_000_000, 0.1), row("b", 1_000_000, 3.0)];
        let out = bench_diff(&old, &new, 50.0);
        assert!(out.failures.iter().any(|f| f.starts_with("aggregate:")), "{:?}", out.failures);
        // Identical reports: aggregate is flat, nothing fails.
        let out = bench_diff(&old, &old, 10.0);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.summary.contains("(+0.0%)"), "{}", out.summary);
    }

    #[test]
    fn trace_completeness_detects_missing_arm() {
        let good = "pub enum TraceKind {\n    A { x: u8 },\n    B,\n}\n\
                    fn name(k: TraceKind) { match k { TraceKind::A { .. } => {}, \
                    TraceKind::B => {} } }\n\
                    fn json(k: TraceKind) { match k { TraceKind::A { .. } => {}, \
                    TraceKind::B => {} } }\n";
        assert!(check_trace_completeness("t.rs", good).is_empty());
        let missing = "pub enum TraceKind {\n    A { x: u8 },\n    B,\n}\n\
                       fn name(k: TraceKind) { match k { TraceKind::A { .. } => {}, \
                       TraceKind::B => {} } }\n\
                       fn json(k: TraceKind) { match k { TraceKind::A { .. } => {} } }\n";
        let f = check_trace_completeness("t.rs", missing);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("TraceKind::B"), "{}", f[0].msg);
    }
}
