//! Workspace task runner. The only task today is `lint` (alias `oolint`),
//! the determinism & robustness pass described in [`xtask`]'s crate docs.
//!
//! ```text
//! cargo run -p xtask -- lint            # check (CI hard gate)
//! cargo run -p xtask -- lint --update   # rewrite lint-ratchet.toml
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(manifest)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut update = false;
    let mut root = workspace_root();
    let mut task = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "lint" | "oolint" => task = Some("lint"),
            "--update" => update = true,
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: cargo run -p xtask -- lint [--update] [--root PATH]");
                return ExitCode::FAILURE;
            }
        }
    }
    if task != Some("lint") {
        eprintln!("usage: cargo run -p xtask -- lint [--update] [--root PATH]");
        return ExitCode::FAILURE;
    }

    let outcome = match xtask::run_lint(&root, update) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("oolint: i/o error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in &outcome.findings {
        eprintln!("{f}");
    }
    let (mut u, mut e, mut p, mut d) = (0, 0, 0, 0);
    for b in outcome.counts.values() {
        u += b.unwraps;
        e += b.expects;
        p += b.panics;
        d += b.undocumented;
    }
    eprintln!(
        "oolint: {} finding(s); ratchet counts: {u} unwraps, {e} expects, {p} panics, \
         {d} undocumented pub items across {} crates{}",
        outcome.findings.len(),
        outcome.counts.len(),
        if update { " (lint-ratchet.toml rewritten)" } else { "" },
    );
    if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
