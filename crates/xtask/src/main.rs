//! Workspace task runner: `lint` (alias `oolint`), the determinism &
//! robustness pass described in [`xtask`]'s crate docs, and `bench-diff`,
//! the engine-throughput regression gate over `BENCH_engine.json` reports.
//!
//! ```text
//! cargo run -p xtask -- lint                 # check (CI hard gate)
//! cargo run -p xtask -- lint --graph         # + flow-aware taint analysis
//! cargo run -p xtask -- lint --json          # machine-readable findings
//! cargo run -p xtask -- lint --explain graph-nondet
//! cargo run -p xtask -- lint --update        # rewrite lint-ratchet.toml
//! cargo run -p xtask -- bench-diff old.json new.json --max-regress 10
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(manifest)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--graph] [--json] [--update] [--root PATH]\n       \
         cargo run -p xtask -- lint --explain <rule>\n       \
         cargo run -p xtask -- bench-diff <old.json> <new.json> [--max-regress PCT] [--summary]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") | Some("oolint") => lint_cmd(&args[1..]),
        Some("bench-diff") => bench_diff_cmd(&args[1..]),
        _ => usage(),
    }
}

fn lint_cmd(args: &[String]) -> ExitCode {
    let mut update = false;
    let mut graph = false;
    let mut json = false;
    let mut root = workspace_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--update" => update = true,
            "--graph" => graph = true,
            "--json" => json = true,
            "--explain" => {
                let Some(rule) = it.next() else {
                    eprintln!("--explain needs a rule name");
                    return ExitCode::FAILURE;
                };
                return explain_cmd(rule);
            }
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let outcome = match xtask::run_lint(&root, update) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("oolint: i/o error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut findings = outcome.findings;
    if graph {
        match xtask::run_graph_lint(&root) {
            Ok(mut f) => findings.append(&mut f),
            Err(e) => {
                eprintln!("oolint: graph pass i/o error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if json {
        // Machine-readable findings on stdout (CI uploads this artifact);
        // the human summary stays on stderr.
        print!("{}", xtask::findings_to_json(&findings));
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
    }
    let (mut u, mut e, mut p, mut d, mut c) = (0, 0, 0, 0, 0);
    for b in outcome.counts.values() {
        u += b.unwraps;
        e += b.expects;
        p += b.panics;
        d += b.undocumented;
        c += b.narrowing_casts;
    }
    eprintln!(
        "oolint: {} finding(s){}; ratchet counts: {u} unwraps, {e} expects, {p} panics, \
         {d} undocumented pub items, {c} narrowing casts across {} crates{}",
        findings.len(),
        if graph { " (text + graph)" } else { "" },
        outcome.counts.len(),
        if update { " (lint-ratchet.toml rewritten)" } else { "" },
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn explain_cmd(rule: &str) -> ExitCode {
    match xtask::explain_rule(rule) {
        Some(text) => {
            println!("{rule}\n{}\n{text}", "-".repeat(rule.len()));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown rule `{rule}`; known rules:");
            for (r, _) in xtask::RULE_EXPLANATIONS {
                eprintln!("  {r}");
            }
            ExitCode::FAILURE
        }
    }
}

fn bench_diff_cmd(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut max_regress = 10.0f64;
    let mut summary = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-regress" => {
                let Some(pct) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--max-regress expects a percentage");
                    return ExitCode::FAILURE;
                };
                max_regress = pct;
            }
            "--summary" => summary = true,
            other if !other.starts_with("--") => paths.push(a),
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let [old_path, new_path] = paths[..] else {
        return usage();
    };
    let load = |path: &String| -> Result<Vec<xtask::BenchRow>, String> {
        let content =
            std::fs::read_to_string(path).map_err(|e| format!("{path}: read failed: {e}"))?;
        xtask::parse_bench_json(&content).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (o, n) => {
            for r in [o.err(), n.err()].into_iter().flatten() {
                eprintln!("bench-diff: {r}");
            }
            return ExitCode::FAILURE;
        }
    };
    let out = xtask::bench_diff(&old, &new, max_regress);
    if summary {
        // One line, pass or fail — for commit messages and CI step names.
        println!(
            "bench-diff: {} {}",
            if out.failures.is_empty() { "ok" } else { "FAIL" },
            out.summary
        );
        return if out.failures.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    for l in &out.lines {
        println!("{l}");
    }
    if out.failures.is_empty() {
        println!("bench-diff: ok (gate: {max_regress}% on events/sec)");
        ExitCode::SUCCESS
    } else {
        for f in &out.failures {
            eprintln!("bench-diff: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
