//! End-to-end tests of the oolint v2 graph pass (`lint --graph`) over the
//! seeded fixture workspace in `tests/fixtures/graphws/`: every
//! deliberately-planted leak must surface as a full call chain, every
//! suppression hop must be honored, and the unreachable source must stay
//! silent.

use std::path::PathBuf;

fn graphws_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graphws")
}

fn graph_findings() -> Vec<xtask::Finding> {
    xtask::run_graph_lint(&graphws_root()).expect("fixture workspace lints")
}

#[test]
fn cross_crate_wall_clock_leak_reports_the_full_chain() {
    let findings = graph_findings();
    let leak: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "graph-nondet" && f.msg.contains("wall-clock"))
        .collect();
    assert_eq!(leak.len(), 1, "exactly the seeded wall-clock chain: {findings:?}");
    let f = leak[0];
    assert!(f.file.ends_with("workload/src/gen.rs"), "source file is the sink's: {}", f.file);
    assert!(f.msg.contains("OpenOpticsNet::run_for"), "entry named: {}", f.msg);
    for hop in ["core/net.rs:run_for", "core/net.rs:dispatch", "workload/gen.rs:jitter"] {
        assert!(f.msg.contains(hop), "chain hop `{hop}` missing: {}", f.msg);
    }
    assert!(f.msg.contains("std::time::Instant::now"), "sink named: {}", f.msg);
}

#[test]
fn imported_hashmap_is_a_nondet_map_source() {
    let findings = graph_findings();
    assert!(
        findings.iter().any(|f| f.rule == "graph-nondet"
            && f.msg.contains("nondet-map")
            && f.msg.contains("reconfigure")
            && f.msg.contains("std::collections::HashMap")),
        "HashMap reached through a `use` import must be reported: {findings:?}"
    );
}

#[test]
fn unreachable_source_is_silent() {
    let findings = graph_findings();
    assert!(
        !findings.iter().any(|f| f.msg.contains("unreachable_source")),
        "a source with no path from any entry point must not be reported: {findings:?}"
    );
}

#[test]
fn suppression_is_honored_at_call_hop_and_at_source() {
    let findings = graph_findings();
    // The deploy -> excused_helper chain is suppressed at the call hop.
    assert!(
        !findings.iter().any(|f| f.msg.contains("SystemTime")),
        "chain suppressed at a call hop must not be reported: {findings:?}"
    );
    // The inject_faults -> seeded_entropy -> thread_rng chain is
    // suppressed at the source line.
    assert!(
        !findings.iter().any(|f| f.msg.contains("thread_rng")),
        "source-line suppression must be honored: {findings:?}"
    );
}

#[test]
fn domain_send_flags_only_the_unsound_fire_time() {
    let findings = graph_findings();
    let sends: Vec<_> = findings.iter().filter(|f| f.rule == "domain-send").collect();
    assert_eq!(sends.len(), 1, "only `broken` fires at now with no margin: {findings:?}");
    assert!(sends[0].file.ends_with("sim/src/domain.rs"), "{}", sends[0].file);
    assert!(sends[0].msg.contains("`now`"), "{}", sends[0].msg);
    assert!(sends[0].msg.contains("Ring::broken"), "{}", sends[0].msg);
}

#[test]
fn entry_point_table_resolves_against_the_fixture() {
    let findings = graph_findings();
    assert!(
        !findings.iter().any(|f| f.msg.contains("entry point")),
        "every hardcoded entry point must resolve in the fixture: {findings:?}"
    );
}

#[test]
fn real_tree_has_zero_unsuppressed_graph_findings() {
    // The acceptance gate, as a test: the shipped tree is clean.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let findings = xtask::run_graph_lint(&root).expect("real tree lints");
    assert!(findings.is_empty(), "real tree must be clean: {findings:?}");
}
