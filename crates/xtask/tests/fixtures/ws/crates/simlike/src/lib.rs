//! Fixture: a sim-path crate committing one of every violation class.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

// oolint: allow(nondet-map, fixture: alias over a deterministic hasher)
pub type Allowed = std::collections::HashSet<u8>;

pub fn wall() -> u64 {
    let _t = std::time::Instant::now();
    0
}

pub fn relax(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

pub fn two_unwraps(v: Option<u8>, w: Option<u8>) -> u8 {
    let _m: HashMap<u8, u8> = HashMap::new();
    v.unwrap() + w.unwrap()
}
