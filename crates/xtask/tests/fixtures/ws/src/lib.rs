//! Fixture root package: not a sim-path crate, so std maps are fine here.

use std::collections::HashMap;

pub fn one(v: Option<u8>) -> u8 {
    let _m: HashMap<u8, u8> = HashMap::new();
    v.unwrap()
}
