//! Root facade of the graph fixture workspace (intentionally empty).
