//! Fixture: the cross-crate leak sink plus an unreachable source.

/// Reached from openoptics-core's run_for via dispatch: the seeded leak.
pub fn jitter() -> u64 {
    let _t = std::time::Instant::now();
    0
}

/// A wall-clock source no entry point reaches: must NOT be reported.
pub fn unreachable_source() {
    let _t = std::time::Instant::now();
}
