//! Fixture: control-plane session entry points. Everything a session can do
//! to an engine must stay on the deterministic path, so these methods are in
//! `taint::ENTRY_POINTS` and have to resolve here.

pub struct Session;

impl Session {
    pub fn run_until(&mut self) {}

    pub fn apply(&mut self) {}

    pub fn restore() {}
}

pub struct ControlPlane;

impl ControlPlane {
    pub fn handle_request(&mut self) {}

    pub fn drain_frames(&mut self) {}
}
