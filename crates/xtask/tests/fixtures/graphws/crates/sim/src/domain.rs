//! Fixture: domain scheduler entry points and Outbox send sites.

pub struct Outbox;

impl Outbox {
    pub fn send(&mut self, dst: usize, at: SimTime, event: u64) {
        let _ = (dst, at, event);
    }
}

pub struct DomainScheduler;

impl DomainScheduler {
    pub fn run_until(&mut self) {}
}

pub fn run() {}

pub fn run_while() {}

pub struct Ring {
    delay_ns: u64,
}

impl Ring {
    /// Sound: fire time is now + a physical delay.
    pub fn forward(&self, out: &mut Outbox, now: SimTime) {
        out.send(1, now + self.delay_ns, 7);
    }

    /// Sound: fire time references the epoch bound directly.
    pub fn flush(&self, out: &mut Outbox, epoch_end: SimTime) {
        out.send(0, epoch_end, 9);
    }

    /// LEAK 3: fires at `now` with no provable lookahead margin.
    pub fn broken(&self, out: &mut Outbox, now: SimTime) {
        out.send(2, now, 11);
    }

    /// Suppressed with a justification: not reported.
    pub fn excused(&self, out: &mut Outbox, now: SimTime) {
        // oolint: allow(domain-send, fixture: barrier re-sorts delivery)
        out.send(3, now, 13);
    }
}
