//! Fixture: sim-path entry points with seeded cross-crate leaks.

use std::collections::HashMap;

pub struct OpenOpticsNet;

impl OpenOpticsNet {
    /// LEAK 1: three-hop cross-crate chain to a wall-clock source —
    /// run_for -> dispatch -> openoptics_workload::jitter -> Instant::now.
    pub fn run_for(&mut self) {
        self.dispatch();
    }

    fn dispatch(&mut self) {
        openoptics_workload::jitter();
    }

    pub fn run_with_snapshots(&mut self) {}

    pub fn deploy(&mut self) {
        // oolint: allow(graph-nondet, fixture: hop-suppressed chain must not be reported)
        self.excused_helper();
    }

    fn excused_helper(&mut self) {
        let _t = std::time::SystemTime::now();
    }

    pub fn deploy_preset(&mut self) {}
    pub fn deploy_topo(&mut self) {}
    pub fn deploy_routing(&mut self) {}

    /// LEAK 2: a HashMap reached through an import (the path use carries
    /// the expanded `std::collections::HashMap`).
    pub fn reconfigure(&mut self) {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
    }

    pub fn inject_faults(&mut self) {
        seeded_entropy();
    }
}

fn seeded_entropy() {
    // oolint: allow(graph-nondet, fixture: source-suppressed with a justification)
    let _r = thread_rng();
}
