//! Driver-level tests for `run_lint` over the fixture workspace in
//! `tests/fixtures/ws/`: positive hits for each determinism rule, allow
//! suppression, ratchet-increase rejection, and the `--update` rewrite.

use std::path::{Path, PathBuf};

use xtask::{run_lint, Finding};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn hit<'a>(findings: &'a [Finding], rule: &str, file_suffix: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule && f.file.ends_with(file_suffix)).collect()
}

#[test]
fn fixture_positive_hits() {
    let out = run_lint(&fixture_root(), false).expect("fixture lint runs");

    let nondet = hit(&out.findings, "nondet-map", "simlike/src/lib.rs");
    assert_eq!(nondet.len(), 1, "{:?}", out.findings);
    assert_eq!(nondet[0].line, 3, "the bare `use std::collections::HashMap`");

    assert_eq!(hit(&out.findings, "wall-clock", "simlike/src/lib.rs").len(), 1);
    assert_eq!(hit(&out.findings, "relaxed-ordering", "simlike/src/lib.rs").len(), 1);
}

#[test]
fn fixture_allow_annotation_suppresses() {
    let out = run_lint(&fixture_root(), false).expect("fixture lint runs");
    // Line 7 is the annotated `pub type Allowed = std::collections::HashSet`;
    // the allow(nondet-map, reason) comment on line 6 must suppress it.
    assert!(
        !out.findings.iter().any(|f| f.file.ends_with("simlike/src/lib.rs") && f.line == 7),
        "{:?}",
        out.findings
    );
    // The root package is not a sim-path crate, so its HashMap use is legal.
    assert!(
        !out.findings.iter().any(|f| f.rule == "nondet-map" && f.file.ends_with("ws/src/lib.rs")),
        "{:?}",
        out.findings
    );
}

#[test]
fn fixture_ratchet_increase_rejected() {
    let out = run_lint(&fixture_root(), false).expect("fixture lint runs");
    // The committed budget allows 1 unwrap in openoptics-sim; the fixture
    // source has 2, so the rise must be a finding. demo-root is exactly at
    // budget and must pass.
    let ratchet: Vec<_> = out.findings.iter().filter(|f| f.rule == "ratchet").collect();
    assert_eq!(ratchet.len(), 1, "{:?}", out.findings);
    assert!(ratchet[0].msg.contains("openoptics-sim"), "{}", ratchet[0].msg);
    assert!(ratchet[0].msg.contains("unwraps"), "{}", ratchet[0].msg);
}

fn copy_tree(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to)?;
        } else {
            std::fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

#[test]
fn fixture_update_rewrites_ratchet() {
    // Work on a throwaway copy so --update never mutates the fixture.
    let tmp = std::env::temp_dir().join(format!("oolint-fixture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    copy_tree(&fixture_root(), &tmp).expect("copy fixture to temp dir");

    let updated = run_lint(&tmp, true).expect("lint --update runs");
    // --update measures; it does not judge the ratchet.
    assert!(!updated.findings.iter().any(|f| f.rule == "ratchet"), "{:?}", updated.findings);
    let rewritten = std::fs::read_to_string(tmp.join("lint-ratchet.toml")).expect("rewritten");
    let budgets = xtask::parse_ratchet(&rewritten);
    assert_eq!(budgets["openoptics-sim"].unwraps, 2, "{rewritten}");
    assert_eq!(budgets["demo-root"].unwraps, 1, "{rewritten}");

    // After the rewrite a plain run accepts the counts: determinism findings
    // remain, ratchet findings are gone.
    let after = run_lint(&tmp, false).expect("post-update lint runs");
    assert!(!after.findings.iter().any(|f| f.rule == "ratchet"), "{:?}", after.findings);
    assert_eq!(after.findings.iter().filter(|f| f.rule == "nondet-map").count(), 1);

    let _ = std::fs::remove_dir_all(&tmp);
}
