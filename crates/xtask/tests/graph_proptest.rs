//! Property test for the oolint v2 taint engine: generate random fixture
//! workspaces — a random call DAG spread over two crates, a randomly
//! placed wall-clock source, random suppression hops — and assert the
//! graph pass reports a leak **iff** the model says an unsuppressed path
//! from the entry point to the source exists.
//!
//! This is the soundness/precision contract in one property: reachability
//! through any chain of first-party calls is reported; pruning any hop
//! (call line or source line) with a justified `oolint: allow` silences
//! exactly the chains through it; and an unreachable source never fires.

use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One generated function in the call DAG.
#[derive(Debug, Clone)]
struct GenFn {
    /// Outgoing edges `(callee index, edge suppressed)`. Callee indices
    /// are always greater than the caller's, so the graph is a DAG.
    calls: Vec<(usize, bool)>,
}

/// The generated workspace model.
#[derive(Debug, Clone)]
struct Model {
    fns: Vec<GenFn>,
    /// Which function body carries the `std::time::Instant::now()` source.
    source_in: usize,
    /// Whether the source line itself carries a justified allow.
    source_suppressed: bool,
}

/// Model-side ground truth: is the source reachable from fn 0 through
/// unsuppressed edges, with the source line itself unsuppressed?
fn model_leaks(m: &Model) -> bool {
    if m.source_suppressed {
        return false;
    }
    let mut seen = vec![false; m.fns.len()];
    let mut q = VecDeque::from([0usize]);
    seen[0] = true;
    while let Some(i) = q.pop_front() {
        if i == m.source_in {
            return true;
        }
        for &(j, suppressed) in &m.fns[i].calls {
            if !suppressed && !seen[j] {
                seen[j] = true;
                q.push_back(j);
            }
        }
    }
    false
}

/// Render one function body: suppressible calls plus (maybe) the source.
fn render_fn(m: &Model, i: usize) -> String {
    let mut s = format!("pub fn f_{i}() {{\n");
    if m.source_in == i {
        if m.source_suppressed {
            s.push_str("    // oolint: allow(graph-nondet, generated: source suppressed)\n");
        }
        s.push_str("    let _t = std::time::Instant::now();\n");
    }
    for &(j, suppressed) in &m.fns[i].calls {
        if suppressed {
            s.push_str("    // oolint: allow(graph-nondet, generated: edge suppressed)\n");
        }
        s.push_str(&format!("    f_{j}();\n"));
    }
    s.push_str("}\n");
    s
}

/// Write the model to a throwaway workspace and run the graph pass on it.
fn run_model(m: &Model) -> Vec<xtask::Finding> {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "oolint-graphprop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::SeqCst)
    ));
    let w = |rel: &str, content: &str| {
        let p = dir.join(rel);
        std::fs::create_dir_all(p.parent().expect("parented path")).expect("mkdir");
        std::fs::write(p, content).expect("write fixture file");
    };

    w("Cargo.toml", "[package]\nname = \"openoptics\"\n");
    w("src/lib.rs", "");
    w("crates/sim/Cargo.toml", "[package]\nname = \"openoptics-sim\"\n");
    // Entry stubs so the hardcoded entry table fully resolves; run_for
    // enters the generated DAG at f_0.
    w(
        "crates/sim/src/domain.rs",
        "pub fn run() {}\npub fn run_while() {}\n\
         pub struct DomainScheduler;\nimpl DomainScheduler { pub fn run_until(&mut self) {} }\n",
    );
    w("crates/ctl/Cargo.toml", "[package]\nname = \"openoptics-ctl\"\n");
    w(
        "crates/ctl/src/session.rs",
        "pub struct Session;\nimpl Session {\n    pub fn run_until(&mut self) {}\n    \
         pub fn apply(&mut self) {}\n    pub fn restore() {}\n}\n\
         pub struct ControlPlane;\nimpl ControlPlane {\n    \
         pub fn handle_request(&mut self) {}\n    pub fn drain_frames(&mut self) {}\n}\n",
    );
    w("crates/core/Cargo.toml", "[package]\nname = \"openoptics-core\"\n");
    let mut core = String::from("pub struct OpenOpticsNet;\nimpl OpenOpticsNet {\n");
    for entry in [
        "run_with_snapshots",
        "deploy",
        "deploy_preset",
        "deploy_topo",
        "deploy_routing",
        "reconfigure",
        "inject_faults",
    ] {
        core.push_str(&format!("    pub fn {entry}(&mut self) {{}}\n"));
    }
    core.push_str("    pub fn run_for(&mut self) { f_0(); }\n}\n");
    // Even-indexed functions live beside the entry; odd-indexed ones in a
    // second crate, so chains genuinely cross a crate boundary.
    w("crates/workload/Cargo.toml", "[package]\nname = \"openoptics-workload\"\n");
    let mut workload = String::new();
    for i in 0..m.fns.len() {
        let body = render_fn(m, i);
        if i % 2 == 0 {
            core.push_str(&body);
        } else {
            workload.push_str(&body);
        }
    }
    w("crates/core/src/net.rs", &core);
    w("crates/workload/src/gen.rs", &workload);

    let findings = xtask::run_graph_lint(&dir).expect("generated workspace lints");
    std::fs::remove_dir_all(&dir).ok();
    findings
}

fn model_strategy() -> impl Strategy<Value = Model> {
    // 2..=8 functions; each fn calls a random subset of later fns with
    // per-edge suppression bits (forward edges only, so the graph is a
    // DAG); the source lands in a random fn.
    (2usize..=8).prop_flat_map(|n| {
        let raw_edges = proptest::collection::vec(
            proptest::collection::vec((any::<usize>(), any::<bool>()), 0..3),
            n,
        );
        (raw_edges, 0..n, any::<bool>()).prop_map(move |(raw, source_in, source_suppressed)| {
            let fns = raw
                .into_iter()
                .enumerate()
                .map(|(i, calls)| GenFn {
                    // Map each raw index into the forward range i+1..=n and
                    // drop the out-of-graph sentinel n.
                    calls: calls
                        .into_iter()
                        .map(|(r, s)| (i + 1 + r % (n - i), s))
                        .filter(|&(j, _)| j < n)
                        .collect(),
                })
                .collect();
            Model { fns, source_in, source_suppressed }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn leak_reported_iff_unsuppressed_path_exists(m in model_strategy()) {
        let findings = run_model(&m);
        let leaks: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "graph-nondet" && f.msg.contains("Instant::now"))
            .collect();
        let expected = model_leaks(&m);
        prop_assert_eq!(
            !leaks.is_empty(),
            expected,
            "model {:?}; findings {:?}",
            m,
            findings
        );
        // When reported, the chain is anchored at the entry point and
        // ends at the source.
        if expected {
            prop_assert!(
                leaks.iter().any(|f| f.msg.contains("OpenOpticsNet::run_for")
                    && f.msg.contains(&format!("f_{}", m.source_in))),
                "chain names entry and sink: {:?}",
                leaks
            );
        }
        // Stale-entry findings never appear: the stubs cover the table.
        prop_assert!(
            !findings.iter().any(|f| f.msg.contains("entry point")),
            "{:?}",
            findings
        );
    }
}
