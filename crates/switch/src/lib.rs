//! # openoptics-switch
//!
//! The programmable-switch backend of OpenOptics (§5): the system that
//! makes the time-flow table executable on real hardware. The paper
//! implements it in P4 on Intel Tofino2; this crate is a behavioral model
//! of that data plane at packet granularity:
//!
//! * [`tft`] — the time-flow table: arrival-slice + destination match,
//!   egress port + departure-slice action, wildcard reduction to a plain
//!   flow table, per-flow / per-packet multipath groups (§3);
//! * [`calendar`] — per-egress-port calendar queues with pause/resume and
//!   per-slice rotation (§5.1);
//! * [`eqo`] — ingress-register queue-occupancy estimation with periodic
//!   line-rate decrements (§5.2, Appendix A);
//! * [`congestion`] — slice-capacity congestion detection with pluggable
//!   responses (drop / trim / defer);
//! * [`pushback`] — last-resort traffic push-back message generation;
//! * [`offload`] — buffer offloading of far-future calendar queues to hosts;
//! * [`pipeline`] — the switch-to-switch delay model (Fig. 11);
//! * [`resources`] — the Tofino2 resource-usage model (Table 2);
//! * [`tor`] — [`tor::ToRSwitch`], the composition the engine drives.

pub mod calendar;
pub mod congestion;
pub mod eqo;
pub mod offload;
pub mod pipeline;
pub mod pushback;
pub mod resources;
pub mod tft;
pub mod tor;

pub use calendar::CalendarPort;
pub use congestion::{CongestionOutcome, CongestionPolicy};
pub use eqo::Eqo;
pub use pipeline::PipelineModel;
pub use resources::{ResourceUsage, SwitchResourceModel};
pub use tft::TimeFlowTable;
pub use tor::{DropReason, IngressDecision, IngressResult, ToRSwitch, TorConfig};
