//! Buffer offloading (§5.2) — switch-side bookkeeping.
//!
//! Multi-hop schemes like VLB buffer packets for up to a full optical cycle
//! at intermediate switches. OpenOptics keeps only the calendar queues for
//! the immediate future on the switch and stores the rest on hosts,
//! returning them "in advance, guided by circuit notification messages".
//!
//! This module is the switch's ledger: which packets were parked for which
//! absolute slice, and when each batch must be recalled so it reaches the
//! switch before its slice activates. The engine moves the actual bytes
//! over the host links; the Fig. 14 experiment measures how stable that
//! round trip is.

use openoptics_proto::{Packet, PortId};
use openoptics_sim::time::{SimTime, SliceConfig};
use std::collections::BTreeMap;

/// Offloading policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct OffloadPolicy {
    /// Ranks `< keep_ranks` stay in switch calendar queues; deeper ranks
    /// are parked on hosts ("each switch only keeps N calendar queues per
    /// egress port for the immediate future").
    pub keep_ranks: u32,
    /// How long before its slice a parked batch is recalled. Must cover the
    /// host round trip plus jitter (Fig. 14: ±0.75 µs with libvma).
    pub return_lead_ns: u64,
}

impl OffloadPolicy {
    /// Whether a packet of this rank should be parked.
    pub fn should_offload(&self, rank: u32) -> bool {
        rank >= self.keep_ranks
    }
}

/// The switch's ledger of parked packets, keyed by absolute slice ordinal.
#[derive(Clone, Debug, Default)]
pub struct OffloadBook {
    parked: BTreeMap<u64, Vec<(PortId, Packet)>>,
    parked_bytes: u64,
    /// Total packets ever parked.
    pub offloaded_packets: u64,
    /// Total bytes ever parked.
    pub offloaded_bytes: u64,
    /// Total packets recalled.
    pub returned_packets: u64,
    /// Peak concurrently parked bytes.
    pub peak_parked_bytes: u64,
}

impl OffloadBook {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park a packet destined for absolute slice `abs_slice`, remembering
    /// the uplink it must eventually leave on.
    pub fn park(&mut self, abs_slice: u64, port: PortId, pkt: Packet) {
        self.offloaded_packets += 1;
        self.offloaded_bytes += pkt.size as u64;
        self.parked_bytes += pkt.size as u64;
        self.peak_parked_bytes = self.peak_parked_bytes.max(self.parked_bytes);
        self.parked.entry(abs_slice).or_default().push((port, pkt));
    }

    /// Bytes currently parked on hosts.
    pub fn parked_bytes(&self) -> u64 {
        self.parked_bytes
    }

    /// Packets currently parked.
    pub fn parked_packets(&self) -> usize {
        self.parked.values().map(|v| v.len()).sum()
    }

    /// Whether anything is parked.
    pub fn is_empty(&self) -> bool {
        self.parked.is_empty()
    }

    /// The recall deadline for a batch destined to `abs_slice`: the slice's
    /// start minus the configured lead.
    pub fn recall_time(abs_slice: u64, cfg: &SliceConfig, lead_ns: u64) -> SimTime {
        SimTime::from_ns((abs_slice * cfg.slice_ns).saturating_sub(lead_ns))
    }

    /// The earliest pending recall deadline, if any batch is parked.
    pub fn next_recall(&self, cfg: &SliceConfig, lead_ns: u64) -> Option<(u64, SimTime)> {
        self.parked.keys().next().map(|&s| (s, Self::recall_time(s, cfg, lead_ns)))
    }

    /// Pull every batch whose recall deadline is at or before `now`.
    /// Returns `(target absolute slice, port, packet)` triples.
    pub fn due(
        &mut self,
        now: SimTime,
        cfg: &SliceConfig,
        lead_ns: u64,
    ) -> Vec<(u64, PortId, Packet)> {
        let due_slices: Vec<u64> = self
            .parked
            .keys()
            .copied()
            .take_while(|&s| Self::recall_time(s, cfg, lead_ns) <= now)
            .collect();
        let mut out = Vec::new();
        for s in due_slices {
            let batch = self.parked.remove(&s).expect("key just listed");
            for (_, p) in &batch {
                self.parked_bytes -= p.size as u64;
            }
            self.returned_packets += batch.len() as u64;
            out.extend(batch.into_iter().map(|(port, p)| (s, port, p)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openoptics_proto::{HostId, NodeId};

    fn pkt(id: u64, size: u32) -> Packet {
        let mut p = Packet::data(
            id,
            1,
            NodeId(0),
            NodeId(1),
            HostId(0),
            HostId(1),
            size - 64,
            0,
            SimTime::ZERO,
        );
        assert_eq!(p.size, size);
        p.hops = 1;
        p
    }

    fn cfg() -> SliceConfig {
        SliceConfig::new(100_000, 32, 1_000) // 100 us slices
    }

    #[test]
    fn policy_splits_by_rank() {
        let p = OffloadPolicy { keep_ranks: 8, return_lead_ns: 10_000 };
        assert!(!p.should_offload(0));
        assert!(!p.should_offload(7));
        assert!(p.should_offload(8));
    }

    #[test]
    fn park_and_recall_in_slice_order() {
        let mut b = OffloadBook::new();
        b.park(50, PortId(0), pkt(1, 1500));
        b.park(40, PortId(0), pkt(2, 1500));
        b.park(60, PortId(1), pkt(3, 1500));
        assert_eq!(b.parked_packets(), 3);
        let c = cfg();
        // Recall deadline for slice 40 = 40*100us - 10us = 3.99 ms.
        let (s, t) = b.next_recall(&c, 10_000).expect("a recall is pending");
        assert_eq!(s, 40);
        assert_eq!(t, SimTime::from_ns(40 * 100_000 - 10_000));
        // At 4.0 ms, slice 40's batch is due, 50/60 are not.
        let due = b.due(SimTime::from_ms(4), &c, 10_000);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, 40);
        assert_eq!(due[0].2.id, 2);
        assert_eq!(b.parked_packets(), 2);
        assert_eq!(b.returned_packets, 1);
    }

    #[test]
    fn byte_accounting_and_peak() {
        let mut b = OffloadBook::new();
        b.park(10, PortId(0), pkt(1, 1500));
        b.park(10, PortId(0), pkt(2, 500));
        assert_eq!(b.parked_bytes(), 2000);
        assert_eq!(b.peak_parked_bytes, 2000);
        let due = b.due(SimTime::from_secs(1), &cfg(), 0);
        assert_eq!(due.len(), 2);
        assert_eq!(b.parked_bytes(), 0);
        assert_eq!(b.peak_parked_bytes, 2000);
        assert_eq!(b.offloaded_bytes, 2000);
    }

    #[test]
    fn recall_lead_saturates_at_zero() {
        // A batch for slice 0 with a huge lead recalls at t=0, not underflow.
        assert_eq!(OffloadBook::recall_time(0, &cfg(), 999_999), SimTime::ZERO);
    }

    #[test]
    fn empty_book_has_no_recalls() {
        let b = OffloadBook::new();
        assert!(b.next_recall(&cfg(), 0).is_none());
    }
}
