//! Switch-to-switch delay model (Fig. 11, §7).
//!
//! The paper measures the delay from queue-rotation trigger on the sender
//! to Rx-MAC arrival at the receiver, through the MEMS OCS: pipeline
//! processing + serialization + on-wire propagation. Measured bounds:
//! **1287 ns minimum, 1324 ns maximum** across packet sizes, a 34 ns
//! spread the guardband must absorb; the minimum is offset away by starting
//! rotation early.
//!
//! Model: a fixed pipeline+propagation base, a size-proportional
//! serialization term at the 400 Gbps ToR-fabric link rate, and a small
//! bounded jitter for PHY/MAC variance. Calibrated so a 64 B probe lands at
//! ~1287 ns and a 1500 B frame at up to ~1324 ns.

use openoptics_sim::rate::Bandwidth;
use openoptics_sim::rng::SimRng;

/// Delay model for one hop: endpoint node → optical fabric → endpoint node.
#[derive(Clone, Copy, Debug)]
pub struct PipelineModel {
    /// Fixed term: ingress+egress pipeline latency and fiber propagation, ns.
    pub base_ns: u64,
    /// Link rate used for the serialization term.
    pub link: Bandwidth,
    /// Uniform jitter bound (inclusive), ns.
    pub jitter_ns: u64,
}

impl Default for PipelineModel {
    fn default() -> Self {
        // Calibration (Fig. 11): 64 B  -> 1286 + 1 + j,  j in 0..=7  => 1287..=1294
        //                        1500 B -> 1286 + 30 + j             => 1316..=1323
        PipelineModel { base_ns: 1_286, link: Bandwidth::gbps(400), jitter_ns: 7 }
    }
}

impl PipelineModel {
    /// Delay for a packet of `size` bytes, with jitter drawn from `rng`.
    pub fn delay_ns(&self, size: u32, rng: &mut SimRng) -> u64 {
        self.base_ns
            + self.link.tx_time_ns(size as u64).max(1)
            + if self.jitter_ns > 0 { rng.range(0..=self.jitter_ns) } else { 0 }
    }

    /// Minimum possible delay (the offset applied to rotation start so the
    /// least-delayed packet meets the circuit, §7).
    pub fn min_delay_ns(&self) -> u64 {
        self.base_ns + self.link.tx_time_ns(64).max(1)
    }

    /// Maximum possible delay for `max_size`-byte packets.
    pub fn max_delay_ns(&self, max_size: u32) -> u64 {
        self.base_ns + self.link.tx_time_ns(max_size as u64).max(1) + self.jitter_ns
    }

    /// The rotation variance the guardband must cover: the spread between
    /// the most- and least-delayed packets (34 ns in the paper).
    pub fn rotation_variance_ns(&self, max_size: u32) -> u64 {
        self.max_delay_ns(max_size) - self.min_delay_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_fig11_bounds() {
        let m = PipelineModel::default();
        assert_eq!(m.min_delay_ns(), 1_287);
        assert_eq!(m.max_delay_ns(1_500), 1_323);
        // The paper reports a 34 ns window (we produce 36 with jitter, same
        // order); the guardband budget check below is the binding one.
        let var = m.rotation_variance_ns(1_500);
        assert!((30..=40).contains(&var), "variance {var}");
    }

    #[test]
    fn delays_within_bounds_for_all_sizes() {
        let m = PipelineModel::default();
        let mut rng = SimRng::new(5);
        for size in [64u32, 128, 256, 512, 1024, 1500] {
            for _ in 0..200 {
                let d = m.delay_ns(size, &mut rng);
                assert!(d >= m.min_delay_ns(), "size {size} delay {d}");
                assert!(d <= m.max_delay_ns(1_500), "size {size} delay {d}");
            }
        }
    }

    #[test]
    fn bigger_packets_take_longer_on_average() {
        let m = PipelineModel::default();
        let mut rng = SimRng::new(6);
        let avg = |size: u32, rng: &mut SimRng| -> f64 {
            (0..500).map(|_| m.delay_ns(size, rng)).sum::<u64>() as f64 / 500.0
        };
        let small = avg(64, &mut rng);
        let large = avg(1500, &mut rng);
        assert!(large > small + 20.0, "64B {small} vs 1500B {large}");
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = PipelineModel { jitter_ns: 0, ..Default::default() };
        let mut rng = SimRng::new(7);
        let d1 = m.delay_ns(1000, &mut rng);
        let d2 = m.delay_ns(1000, &mut rng);
        assert_eq!(d1, d2);
    }
}
