//! The time-flow table (§3).
//!
//! Match: `(arrival time slice, destination)` with wildcard arrival;
//! action: `(egress port, departure time slice[, source-route stack])` with
//! wildcard departure; groups of actions form multipath entries selected by
//! five-tuple or ingress-timestamp hashing. Exact arrival-slice matches
//! take priority over wildcards, so a TA default route can coexist with
//! higher-priority TO entries — exactly how the paper layers routes during
//! reconfiguration (§2.2).

use openoptics_proto::NodeId;
use openoptics_proto::Packet;
use openoptics_routing::{MultipathMode, RouteAction, RouteEntry};
use openoptics_sim::cast::idx_u32;
use openoptics_sim::hash::FxHashMap;
use openoptics_sim::hash::{bucket, flow_hash, packet_hash};
use openoptics_sim::time::SliceIndex;

/// The per-node time-flow table.
#[derive(Clone, Debug, Default)]
/// ```
/// use openoptics_switch::TimeFlowTable;
/// use openoptics_routing::{RouteEntry, RouteMatch, RouteAction, MultipathMode};
/// use openoptics_proto::{NodeId, PortId, HostId, Packet};
/// use openoptics_sim::SimTime;
///
/// let mut tft = TimeFlowTable::new();
/// // Fig. 3(a): arrive in slice 0 toward N3 -> depart slice 2 on port 0.
/// tft.install(RouteEntry {
///     node: NodeId(0),
///     m: RouteMatch { arr_slice: Some(0), dst: NodeId(3) },
///     actions: vec![(RouteAction {
///         port: PortId(0), dep_slice: Some(2), push_source_route: None,
///     }, 1)],
///     multipath: MultipathMode::None,
/// });
/// let pkt = Packet::data(1, 9, NodeId(0), NodeId(3), HostId(0), HostId(3),
///                        1000, 0, SimTime::ZERO);
/// assert_eq!(tft.lookup(&pkt, 0).unwrap().dep_slice, Some(2));
/// assert!(tft.lookup(&pkt, 1).is_none()); // no wildcard fallback installed
/// ```
pub struct TimeFlowTable {
    /// Exact entries keyed by (arrival slice, destination).
    exact: FxHashMap<(SliceIndex, NodeId), TableGroup>,
    /// Wildcard-arrival entries keyed by destination.
    wildcard: FxHashMap<NodeId, TableGroup>,
    /// Lookup statistics: hits and misses.
    pub hits: u64,
    /// Lookup misses (no entry matched).
    pub misses: u64,
}

#[derive(Clone, Debug)]
struct TableGroup {
    actions: Vec<(RouteAction, u32)>,
    total_weight: u32,
    multipath: MultipathMode,
}

impl TimeFlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) one compiled route entry.
    pub fn install(&mut self, entry: RouteEntry) {
        let group = TableGroup {
            total_weight: entry.actions.iter().map(|(_, w)| *w).sum::<u32>().max(1),
            actions: entry.actions,
            multipath: entry.multipath,
        };
        match entry.m.arr_slice {
            Some(ts) => {
                self.exact.insert((ts, entry.m.dst), group);
            }
            None => {
                self.wildcard.insert(entry.m.dst, group);
            }
        }
    }

    /// Install a batch of entries.
    pub fn install_all(&mut self, entries: impl IntoIterator<Item = RouteEntry>) {
        for e in entries {
            self.install(e);
        }
    }

    /// Remove every entry (used on TA reconfiguration).
    pub fn clear(&mut self) {
        self.exact.clear();
        self.wildcard.clear();
    }

    /// Remove only wildcard entries (e.g. before laying a new static route).
    pub fn clear_wildcards(&mut self) {
        self.wildcard.clear();
    }

    /// Number of installed entries (match keys).
    pub fn len(&self) -> usize {
        self.exact.len() + self.wildcard.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.wildcard.is_empty()
    }

    /// Total actions across all groups (the number an ASIC would burn
    /// action-memory entries on).
    pub fn total_actions(&self) -> usize {
        self.exact.values().chain(self.wildcard.values()).map(|g| g.actions.len()).sum()
    }

    /// Whether an exact entry exists for `(arr, dst)`.
    pub fn has_exact(&self, arr: SliceIndex, dst: NodeId) -> bool {
        self.exact.contains_key(&(arr, dst))
    }

    /// Look up the action for `packet` arriving in slice `arr`.
    ///
    /// Priority: exact arrival-slice match, then wildcard. Within a group,
    /// the action is picked by the group's multipath mode: per-flow hashes
    /// `(src, dst, flow)`, per-packet hashes the ingress timestamp plus the
    /// packet id (the "on-chip random number generator" alternative in §3
    /// maps to the same selection semantics).
    pub fn lookup(&mut self, packet: &Packet, arr: SliceIndex) -> Option<&RouteAction> {
        let group = self.exact.get(&(arr, packet.dst)).or_else(|| self.wildcard.get(&packet.dst));
        let Some(group) = group else {
            self.misses += 1;
            return None;
        };
        self.hits += 1;
        let idx = match group.multipath {
            MultipathMode::None => 0,
            MultipathMode::PerFlow => {
                let h = flow_hash(packet.src.0, packet.dst.0, packet.flow);
                weighted_index(&group.actions, group.total_weight, h)
            }
            MultipathMode::PerPacket => {
                let h = packet_hash(packet.ingress_ts.as_ns(), packet.id);
                weighted_index(&group.actions, group.total_weight, h)
            }
        };
        group.actions.get(idx).map(|(a, _)| a)
    }
}

/// Map a hash onto a weighted action list.
fn weighted_index(actions: &[(RouteAction, u32)], total: u32, h: u64) -> usize {
    if actions.len() <= 1 {
        return 0;
    }
    let mut slot = idx_u32(bucket(h, total as usize));
    for (i, (_, w)) in actions.iter().enumerate() {
        if slot < *w {
            return i;
        }
        slot -= w;
    }
    actions.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use openoptics_proto::{HostId, PortId};
    use openoptics_routing::RouteMatch;
    use openoptics_sim::time::SimTime;

    fn entry(
        arr: Option<SliceIndex>,
        dst: NodeId,
        actions: Vec<(PortId, Option<SliceIndex>, u32)>,
        mp: MultipathMode,
    ) -> RouteEntry {
        RouteEntry {
            node: NodeId(0),
            m: RouteMatch { arr_slice: arr, dst },
            actions: actions
                .into_iter()
                .map(|(p, d, w)| {
                    (RouteAction { port: p, dep_slice: d, push_source_route: None }, w)
                })
                .collect(),
            multipath: mp,
        }
    }

    fn pkt(id: u64, flow: u64, dst: NodeId, ts_ns: u64) -> Packet {
        let mut p = Packet::data(
            id,
            flow,
            NodeId(0),
            dst,
            HostId(0),
            HostId(1),
            1000,
            0,
            SimTime::from_ns(ts_ns),
        );
        p.ingress_ts = SimTime::from_ns(ts_ns);
        p
    }

    #[test]
    fn exact_beats_wildcard() {
        let mut t = TimeFlowTable::new();
        t.install(entry(None, NodeId(3), vec![(PortId(9), None, 1)], MultipathMode::None));
        t.install(entry(Some(2), NodeId(3), vec![(PortId(1), Some(2), 1)], MultipathMode::None));
        let p = pkt(1, 1, NodeId(3), 0);
        assert_eq!(t.lookup(&p, 2).expect("flow matches an installed entry").port, PortId(1));
        assert_eq!(t.lookup(&p, 0).expect("flow matches an installed entry").port, PortId(9));
        assert_eq!(t.hits, 2);
    }

    #[test]
    fn miss_counts() {
        let mut t = TimeFlowTable::new();
        let p = pkt(1, 1, NodeId(7), 0);
        assert!(t.lookup(&p, 0).is_none());
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn wildcard_reduction_behaves_like_flow_table() {
        // With only wildcard entries, every arrival slice resolves the same
        // way — the backward-compatibility property of §3.
        let mut t = TimeFlowTable::new();
        t.install(entry(None, NodeId(3), vec![(PortId(2), None, 1)], MultipathMode::None));
        let p = pkt(1, 1, NodeId(3), 0);
        for arr in 0..16 {
            let a = t.lookup(&p, arr).expect("flow matches an installed entry");
            assert_eq!(a.port, PortId(2));
            assert_eq!(a.dep_slice, None);
        }
    }

    #[test]
    fn per_flow_hashing_is_sticky_per_flow() {
        let mut t = TimeFlowTable::new();
        t.install(entry(
            Some(0),
            NodeId(3),
            vec![(PortId(0), Some(0), 1), (PortId(1), Some(0), 1)],
            MultipathMode::PerFlow,
        ));
        // One flow always takes one port.
        let first =
            t.lookup(&pkt(1, 42, NodeId(3), 0), 0).expect("flow matches an installed entry").port;
        for i in 2..50 {
            assert_eq!(
                t.lookup(&pkt(i, 42, NodeId(3), i * 100), 0)
                    .expect("flow matches an installed entry")
                    .port,
                first
            );
        }
        // Different flows spread across both ports.
        let mut seen = openoptics_sim::hash::FxHashSet::default();
        for f in 0..50 {
            seen.insert(
                t.lookup(&pkt(100 + f, f, NodeId(3), 0), 0)
                    .expect("flow matches an installed entry")
                    .port,
            );
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn per_packet_hashing_sprays() {
        let mut t = TimeFlowTable::new();
        t.install(entry(
            Some(0),
            NodeId(3),
            vec![(PortId(0), Some(0), 1), (PortId(1), Some(0), 1)],
            MultipathMode::PerPacket,
        ));
        let mut counts = [0u32; 2];
        for i in 0..400 {
            let port = t
                .lookup(&pkt(i, 42, NodeId(3), i * 120), 0)
                .expect("flow matches an installed entry")
                .port;
            counts[port.index()] += 1;
        }
        assert!(counts[0] > 100 && counts[1] > 100, "skewed spray: {counts:?}");
    }

    #[test]
    fn weighted_groups_respect_weights() {
        let mut t = TimeFlowTable::new();
        // 3:1 weighting.
        t.install(entry(
            Some(0),
            NodeId(3),
            vec![(PortId(0), Some(0), 3), (PortId(1), Some(0), 1)],
            MultipathMode::PerPacket,
        ));
        let mut counts = [0u32; 2];
        for i in 0..2000 {
            let port = t
                .lookup(&pkt(i, i, NodeId(3), i * 97), 0)
                .expect("flow matches an installed entry")
                .port;
            counts[port.index()] += 1;
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((2.0..4.5).contains(&ratio), "weight ratio {ratio}, counts {counts:?}");
    }

    #[test]
    fn install_replaces() {
        let mut t = TimeFlowTable::new();
        t.install(entry(Some(0), NodeId(3), vec![(PortId(0), Some(0), 1)], MultipathMode::None));
        t.install(entry(Some(0), NodeId(3), vec![(PortId(5), Some(1), 1)], MultipathMode::None));
        assert_eq!(t.len(), 1);
        let p = pkt(1, 1, NodeId(3), 0);
        assert_eq!(t.lookup(&p, 0).expect("flow matches an installed entry").port, PortId(5));
    }

    #[test]
    fn clear_wildcards_keeps_exact() {
        let mut t = TimeFlowTable::new();
        t.install(entry(None, NodeId(3), vec![(PortId(0), None, 1)], MultipathMode::None));
        t.install(entry(Some(1), NodeId(3), vec![(PortId(1), Some(1), 1)], MultipathMode::None));
        t.clear_wildcards();
        assert_eq!(t.len(), 1);
        assert!(t.has_exact(1, NodeId(3)));
    }
}
