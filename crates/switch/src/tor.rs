//! The OpenOptics-enabled ToR switch (§5).
//!
//! Composition of the whole switch backend: time-flow-table lookup on
//! ingress, calendar-queue enqueue by departure rank, EQO-based congestion
//! detection with pluggable responses, push-back generation, and buffer
//! offloading for far-future ranks. The simulation engine drives a
//! [`ToRSwitch`] with three calls: [`ToRSwitch::ingress`] when a packet
//! head arrives, [`ToRSwitch::rotate`] at each (locally clocked) slice
//! boundary, and [`ToRSwitch::pop_if_fits`] when an uplink is free to
//! transmit.

use crate::calendar::{CalendarPort, EnqueueError};
use crate::congestion::{
    admissible_bytes, evaluate, CongestionConfig, CongestionOutcome, CongestionPolicy,
};
use crate::eqo::Eqo;
use crate::offload::{OffloadBook, OffloadPolicy};
use crate::pushback::PushbackGen;
use crate::tft::TimeFlowTable;
use openoptics_proto::packet::HEADER_BYTES;
use openoptics_proto::{ControlMsg, FlowId, NodeId, Packet, PortId};
use openoptics_routing::RouteEntry;
use openoptics_sim::cast::idx_u32;
use openoptics_sim::rate::Bandwidth;
use openoptics_sim::time::{SimTime, SliceConfig, SliceIndex};
use openoptics_telemetry::{Counter, Histogram, Labels, Registry, Trace, TraceKind};

/// Static configuration of one ToR switch.
#[derive(Clone, Debug)]
pub struct TorConfig {
    /// This switch's endpoint-node identity.
    pub id: NodeId,
    /// Slice structure of the optical schedule.
    pub slice_cfg: SliceConfig,
    /// Optical uplinks.
    pub uplinks: u16,
    /// Uplink line rate (circuit bandwidth).
    pub uplink_bandwidth: Bandwidth,
    /// Calendar queues per uplink (Tofino2 exposes 32-ish usable egress
    /// queues per port).
    pub num_queues: usize,
    /// Byte capacity of each calendar queue.
    pub queue_capacity: u64,
    /// Congestion-detection service configuration.
    pub congestion: CongestionConfig,
    /// Whether the push-back service is armed.
    pub pushback_enabled: bool,
    /// Buffer offloading policy, if enabled.
    pub offload: Option<OffloadPolicy>,
    /// EQO update interval (50 ns in the paper).
    pub eqo_interval_ns: u64,
    /// Ablation switch: read ground-truth queue occupancy for congestion
    /// detection instead of the EQO estimate (impossible on hardware).
    pub use_true_occupancy: bool,
}

impl TorConfig {
    /// A reasonable default for tests and examples.
    pub fn basic(id: NodeId, slice_cfg: SliceConfig, uplinks: u16) -> Self {
        TorConfig {
            id,
            slice_cfg,
            uplinks,
            uplink_bandwidth: Bandwidth::gbps(100),
            num_queues: 32.min(slice_cfg.num_slices as usize).max(1),
            queue_capacity: 2 * 1024 * 1024,
            congestion: CongestionConfig::default(),
            pushback_enabled: false,
            offload: None,
            eqo_interval_ns: Eqo::PAPER_INTERVAL_NS,
            use_true_occupancy: false,
        }
    }
}

/// Why a packet was dropped at the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Congestion policy decided to drop (or defer found no room).
    Congestion,
    /// Ground-truth queue capacity exceeded (EQO under-estimated).
    QueueCapacity,
    /// Departure rank beyond the calendar ring and offloading disabled.
    RankOverflow,
}

/// Outcome of one ingress pipeline pass.
#[derive(Debug)]
pub enum IngressDecision {
    /// Destination is this switch: hand to the local host layer.
    DeliverLocal(Packet),
    /// Buffered in a calendar queue.
    Enqueued {
        /// Uplink the packet will leave on.
        port: PortId,
        /// Slices until departure.
        rank: u32,
    },
    /// Parked on a host by the offload service.
    Offloaded {
        /// Absolute slice ordinal the packet is parked for.
        abs_slice: u64,
        /// Uplink it will eventually leave on.
        port: PortId,
    },
    /// Payload trimmed (Opera-style); header-only packet enqueued.
    Trimmed {
        /// Uplink the trimmed header will leave on.
        port: PortId,
        /// Slices until departure.
        rank: u32,
    },
    /// Dropped; packet consumed.
    Dropped(DropReason),
    /// No matching time-flow entry; packet returned so the caller can
    /// consult the controller (lazy table population) and retry.
    NoRoute(Packet),
}

/// Ingress outcome plus any push-back broadcast to emit.
#[derive(Debug)]
pub struct IngressResult {
    /// What happened to the packet.
    pub decision: IngressDecision,
    /// Push-back message to broadcast to local hosts, if generated.
    pub pushback: Option<ControlMsg>,
}

/// Packet-level counters for one switch.
#[derive(Clone, Copy, Debug, Default)]
pub struct TorCounters {
    /// Packets buffered successfully.
    pub enqueued: u64,
    /// Packets delivered to local hosts.
    pub delivered_local: u64,
    /// Packets deferred to a later slice by congestion response.
    pub deferred: u64,
    /// Defer responses that found no admissible slice and fell back to a
    /// slice-missing enqueue.
    pub defer_exhausted: u64,
    /// Packets trimmed to header-only.
    pub trimmed: u64,
    /// Drops by congestion policy.
    pub dropped_congestion: u64,
    /// Drops by ground-truth queue capacity.
    pub dropped_capacity: u64,
    /// Drops by rank overflow (no offload).
    pub dropped_rank: u64,
    /// Bytes transmitted per uplink (bandwidth telemetry).
    pub tx_bytes: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
}

/// Live registry instruments of one switch. Detached (free) by default;
/// [`ToRSwitch::attach_telemetry`] binds them to a registry.
#[derive(Clone, Debug, Default)]
struct TorTele {
    /// Head-of-line packets that missed the tail of their slice.
    slice_miss: Counter,
    /// Calendar rotations performed.
    rotations: Counter,
    /// |EQO estimate − true occupancy| at each admission, bytes.
    eqo_abs_err: Histogram,
    trace: Trace,
}

/// The switch model.
///
/// Cloning copies the full switch state (tables, calendar ports, offload
/// ledger) but shares telemetry handles; checkpoint forks re-bind them via
/// [`ToRSwitch::attach_telemetry`].
#[derive(Clone)]
pub struct ToRSwitch {
    /// Static configuration.
    pub cfg: TorConfig,
    tft: TimeFlowTable,
    ports: Vec<CalendarPort<Packet>>,
    eqo: Eqo,
    pushback: PushbackGen,
    /// Offload ledger (meaningful only when `cfg.offload` is set).
    pub offload_book: OffloadBook,
    current_slice: SliceIndex,
    abs_slice: u64,
    /// Telemetry counters.
    pub counters: TorCounters,
    /// Peak total calendar occupancy observed, bytes (Table 3).
    pub peak_buffer_bytes: u64,
    tele: TorTele,
}

impl ToRSwitch {
    /// Build a switch from its configuration.
    pub fn new(cfg: TorConfig) -> Self {
        let ports = (0..cfg.uplinks)
            .map(|_| CalendarPort::new(cfg.num_queues, cfg.queue_capacity))
            .collect();
        let eqo = Eqo::new(
            cfg.uplinks as usize,
            cfg.num_queues,
            cfg.eqo_interval_ns,
            cfg.uplink_bandwidth,
        );
        let pushback = PushbackGen::new(cfg.pushback_enabled);
        ToRSwitch {
            cfg,
            tft: TimeFlowTable::new(),
            ports,
            eqo,
            pushback,
            offload_book: OffloadBook::new(),
            current_slice: 0,
            abs_slice: 0,
            counters: TorCounters::default(),
            peak_buffer_bytes: 0,
            tele: TorTele::default(),
        }
    }

    /// Bind this switch's live instruments (slice-miss counter, EQO error
    /// histogram, trace stream) to `registry`. A disabled registry hands
    /// out detached handles, so hot paths stay branch-only.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        let node = Labels::Node(self.cfg.id);
        self.tele = TorTele {
            slice_miss: registry.counter("tor.slice_miss", node),
            rotations: registry.counter("tor.rotations", node),
            eqo_abs_err: registry.histogram("tor.eqo_abs_err_bytes", node),
            trace: registry.trace(),
        };
    }

    /// Install compiled route entries (the `deploy_routing` endpoint).
    pub fn install_routes(&mut self, entries: impl IntoIterator<Item = RouteEntry>) {
        self.tft.install_all(entries);
    }

    /// Access the time-flow table (telemetry, tests).
    pub fn tft(&self) -> &TimeFlowTable {
        &self.tft
    }

    /// Mutable table access (TA reconfiguration swaps routes).
    pub fn tft_mut(&mut self) -> &mut TimeFlowTable {
        &mut self.tft
    }

    /// The slice this switch currently believes is active.
    pub fn current_slice(&self) -> SliceIndex {
        self.current_slice
    }

    /// Absolute slice ordinal (not wrapped).
    pub fn abs_slice(&self) -> u64 {
        self.abs_slice
    }

    /// Initialize the local slice counters (used when a switch joins with a
    /// clock offset).
    pub fn set_slice(&mut self, slice: SliceIndex, abs: u64) {
        self.current_slice = slice;
        self.abs_slice = abs;
    }

    /// Total bytes currently buffered in calendar queues.
    pub fn buffer_bytes(&self) -> u64 {
        self.ports.iter().map(|p| p.total_bytes()).sum()
    }

    /// Packets currently buffered in calendar queues.
    pub fn buffer_packets(&self) -> usize {
        self.ports.iter().map(|p| p.total_len()).sum()
    }

    /// Per-port buffered bytes (the `buffer_usage()` monitoring API).
    pub fn port_buffer_bytes(&self, port: PortId) -> u64 {
        self.ports[port.index()].total_bytes()
    }

    /// Rank-overflow events across ports.
    pub fn rank_overflows(&self) -> u64 {
        self.ports.iter().map(|p| p.rank_overflow).sum()
    }

    fn active_indices(&self) -> Vec<usize> {
        self.ports.iter().map(|p| p.active_index()).collect()
    }

    fn note_peak(&mut self) {
        let b = self.buffer_bytes();
        if b > self.peak_buffer_bytes {
            self.peak_buffer_bytes = b;
        }
    }

    /// Slice-boundary rotation: apply pending EQO drain for the old active
    /// queues, then rotate every port and bump the slice counters.
    pub fn rotate(&mut self, now: SimTime) {
        let active = self.active_indices();
        self.eqo.refresh(now, &active);
        for p in &mut self.ports {
            p.rotate();
        }
        self.current_slice = self.cfg.slice_cfg.advance(self.current_slice, 1);
        self.abs_slice += 1;
        self.tele.rotations.inc();
        let min_cycle = self.abs_slice / self.cfg.slice_cfg.num_slices as u64;
        if self.tele.trace.is_on() {
            self.tele
                .trace
                .emit(now, TraceKind::SliceRotate { node: self.cfg.id, slice: self.current_slice });
            for (dst, slice, cycle) in self.pushback.gc_collect(min_cycle) {
                self.tele.trace.emit(
                    now,
                    TraceKind::PushbackDeassert { node: self.cfg.id, dst, slice, cycle },
                );
            }
        } else {
            self.pushback.gc(min_cycle);
        }
    }

    /// Ingress pipeline for one packet.
    pub fn ingress(&mut self, mut pkt: Packet, now: SimTime) -> IngressResult {
        let active = self.active_indices();
        self.eqo.refresh(now, &active);
        pkt.ingress_ts = now;

        if pkt.dst == self.cfg.id {
            self.counters.delivered_local += 1;
            return IngressResult { decision: IngressDecision::DeliverLocal(pkt), pushback: None };
        }
        pkt.hops = pkt.hops.saturating_add(1);

        // Resolve the egress decision: an in-flight source route wins;
        // otherwise the time-flow table (which may itself stamp a route).
        let (port, dep_slice) = if let Some(hop) =
            pkt.source_route.as_ref().and_then(|sr| sr.current())
        {
            pkt.source_route.as_mut().expect("just read").advance();
            // The executed hop's header entry is popped off the wire.
            pkt.size = pkt.size.saturating_sub(4);
            (hop.port, hop.dep_slice)
        } else {
            let Some(action) = self.tft.lookup(&pkt, self.current_slice) else {
                return IngressResult { decision: IngressDecision::NoRoute(pkt), pushback: None };
            };
            let (port, dep) = (action.port, action.dep_slice);
            if let Some(mut sr) = action.source_route() {
                // Stamping the hop stack costs wire bytes (4 per hop,
                // Fig. 3d); the first hop is executed and popped right away.
                pkt.size += sr.wire_bytes().saturating_sub(4);
                sr.advance();
                pkt.source_route = Some(sr);
            }
            (port, dep)
        };

        let rank = match dep_slice {
            Some(dep) => self.cfg.slice_cfg.rank(self.current_slice, dep),
            None => 0,
        };
        self.admit(pkt, port, rank, now)
    }

    /// Admission: offload check, congestion detection, calendar enqueue.
    fn admit(&mut self, mut pkt: Packet, port: PortId, rank: u32, now: SimTime) -> IngressResult {
        let pidx = port.index();

        // Buffer offloading: far-future ranks are parked on hosts.
        if let Some(pol) = self.cfg.offload {
            if pol.should_offload(rank) || !self.ports[pidx].rank_fits(rank) {
                let abs = self.abs_slice + rank as u64;
                self.offload_book.park(abs, port, pkt);
                return IngressResult {
                    decision: IngressDecision::Offloaded { abs_slice: abs, port },
                    pushback: None,
                };
            }
        } else if !self.ports[pidx].rank_fits(rank) {
            self.counters.dropped_rank += 1;
            // A rank the ring cannot express is also a queue-full condition
            // for push-back purposes.
            let pb = self.queue_full_pushback(&pkt, rank, now);
            return IngressResult {
                decision: IngressDecision::Dropped(DropReason::RankOverflow),
                pushback: pb,
            };
        }

        // Congestion detection against the EQO estimate.
        let mut chosen_rank = rank;
        let qidx = self.ports[pidx].index_for_rank(rank);
        let est = if self.cfg.use_true_occupancy {
            self.ports[pidx].queue_bytes(qidx)
        } else {
            let est = self.eqo.estimate(pidx, qidx);
            // One EQO error sample per admission: |estimate − ground truth|.
            if self.tele.eqo_abs_err.is_attached() {
                let actual = self.ports[pidx].queue_bytes(qidx);
                self.tele.eqo_abs_err.record(est.abs_diff(actual));
                self.tele.trace.emit(
                    now,
                    TraceKind::EqoSample {
                        node: self.cfg.id,
                        port,
                        queue: idx_u32(qidx),
                        estimate_bytes: est,
                        actual_bytes: actual,
                    },
                );
            }
            est
        };
        let admissible =
            admissible_bytes(&self.cfg.slice_cfg, self.cfg.uplink_bandwidth, rank, now);
        let mut trimmed = false;
        let mut pushback = None;
        if evaluate(&self.cfg.congestion, est, pkt.size, admissible) == CongestionOutcome::Congested
        {
            pushback = self.queue_full_pushback(&pkt, rank, now);
            match self.cfg.congestion.policy {
                CongestionPolicy::Drop => {
                    self.counters.dropped_congestion += 1;
                    return IngressResult {
                        decision: IngressDecision::Dropped(DropReason::Congestion),
                        pushback,
                    };
                }
                CongestionPolicy::Trim => {
                    pkt.size = HEADER_BYTES;
                    pkt.payload = 0;
                    pkt.trimmed = true;
                    trimmed = true;
                    self.counters.trimmed += 1;
                }
                CongestionPolicy::Wait => {
                    // Enqueue into the intended queue regardless; the
                    // packet misses its slice and waits a cycle.
                }
                CongestionPolicy::Defer { max_extra_slices } => {
                    let mut found = None;
                    for extra in 1..=max_extra_slices {
                        let r = rank + extra;
                        if !self.ports[pidx].rank_fits(r) {
                            if let Some(pol) = self.cfg.offload {
                                if pol.should_offload(r) {
                                    let abs = self.abs_slice + r as u64;
                                    self.offload_book.park(abs, port, pkt);
                                    self.counters.deferred += 1;
                                    return IngressResult {
                                        decision: IngressDecision::Offloaded {
                                            abs_slice: abs,
                                            port,
                                        },
                                        pushback,
                                    };
                                }
                            }
                            break;
                        }
                        let qi = self.ports[pidx].index_for_rank(r);
                        let e = if self.cfg.use_true_occupancy {
                            self.ports[pidx].queue_bytes(qi)
                        } else {
                            self.eqo.estimate(pidx, qi)
                        };
                        let adm = admissible_bytes(
                            &self.cfg.slice_cfg,
                            self.cfg.uplink_bandwidth,
                            r,
                            now,
                        );
                        if evaluate(&self.cfg.congestion, e, pkt.size, adm)
                            == CongestionOutcome::Admit
                        {
                            found = Some(r);
                            break;
                        }
                    }
                    match found {
                        Some(r) => {
                            chosen_rank = r;
                            self.counters.deferred += 1;
                        }
                        None => {
                            // Every reachable slice is congested: fall back
                            // to the intended queue and accept the slice
                            // miss (the §5.2 failure mode is delay, not
                            // loss; actual loss only occurs when the queue
                            // capacity itself overflows below).
                            self.counters.defer_exhausted += 1;
                        }
                    }
                }
            }
        }

        // Ground-truth enqueue.
        let size = pkt.size;
        match self.ports[pidx].enqueue(chosen_rank, size, pkt) {
            Ok(qidx) => {
                self.eqo.on_enqueue(pidx, qidx, size);
                self.counters.enqueued += 1;
                self.note_peak();
                IngressResult {
                    decision: if trimmed {
                        IngressDecision::Trimmed { port, rank: chosen_rank }
                    } else {
                        IngressDecision::Enqueued { port, rank: chosen_rank }
                    },
                    pushback,
                }
            }
            Err(EnqueueError::QueueFull(_)) => {
                self.counters.dropped_capacity += 1;
                IngressResult {
                    decision: IngressDecision::Dropped(DropReason::QueueCapacity),
                    pushback,
                }
            }
            Err(EnqueueError::RankOverflow(_)) => {
                self.counters.dropped_rank += 1;
                IngressResult {
                    decision: IngressDecision::Dropped(DropReason::RankOverflow),
                    pushback,
                }
            }
        }
    }

    fn queue_full_pushback(&mut self, pkt: &Packet, rank: u32, now: SimTime) -> Option<ControlMsg> {
        let slice = self.cfg.slice_cfg.advance(self.current_slice, rank);
        let cycle = (self.abs_slice + rank as u64) / self.cfg.slice_cfg.num_slices as u64;
        let msg = self.pushback.on_queue_full(pkt.dst, slice, cycle);
        if msg.is_some() {
            self.tele.trace.emit(
                now,
                TraceKind::PushbackAssert { node: self.cfg.id, dst: pkt.dst, slice, cycle },
            );
        }
        msg
    }

    /// Pop the next packet from `port`'s active queue if its serialization
    /// (plus `end_margin_ns` safety) still fits in the current slice.
    /// Returns the packet and its serialization time.
    pub fn pop_if_fits(
        &mut self,
        port: PortId,
        now: SimTime,
        end_margin_ns: u64,
    ) -> Option<(Packet, u64)> {
        let active = self.active_indices();
        self.eqo.refresh(now, &active);
        let cp = &mut self.ports[port.index()];
        let (len, _) = *cp.peek_active()?;
        let tx = self.cfg.uplink_bandwidth.tx_time_ns(len as u64).max(1);
        let remaining = if self.cfg.slice_cfg.num_slices > 1 {
            self.cfg.slice_cfg.remaining_in_slice(now)
        } else {
            u64::MAX // static fabric: no slice boundary to respect
        };
        if tx + end_margin_ns > remaining {
            // Distinct from an empty queue: the head exists but cannot make
            // the tail of this slice and waits a full cycle.
            self.tele.slice_miss.inc();
            self.tele.trace.emit(now, TraceKind::SliceMiss { node: self.cfg.id, port });
            return None;
        }
        let (len, pkt) = cp.pop_active().expect("peeked head vanished");
        self.counters.tx_bytes += len as u64;
        self.counters.tx_packets += 1;
        Some((pkt, tx))
    }

    /// Whether `port`'s active queue has a packet waiting.
    pub fn has_active_traffic(&self, port: PortId) -> bool {
        self.ports[port.index()].active_bytes() > 0
    }

    /// Packet and flow id of the head of `port`'s active queue, if any —
    /// a non-destructive peek for observability (guardband-hold spans).
    pub fn head_packet_ids(&self, port: PortId) -> Option<(u64, FlowId)> {
        self.ports[port.index()].peek_active().map(|(_, p)| (p.id, p.flow))
    }

    /// Offload batches due for recall at `now` (engine re-injects them
    /// through [`ToRSwitch::reinject_offloaded`] after the host round trip).
    /// Returns `(target absolute slice, port, packet)` triples.
    pub fn offload_due(&mut self, now: SimTime) -> Vec<(u64, PortId, Packet)> {
        match self.cfg.offload {
            Some(pol) => self.offload_book.due(now, &self.cfg.slice_cfg, pol.return_lead_ns),
            None => vec![],
        }
    }

    /// The next offload recall deadline, for engine scheduling.
    pub fn next_offload_recall(&self) -> Option<SimTime> {
        self.cfg
            .offload
            .and_then(|pol| self.offload_book.next_recall(&self.cfg.slice_cfg, pol.return_lead_ns))
            .map(|(_, t)| t)
    }

    /// Re-admit a returned offloaded packet: it flows through the normal
    /// admission path, now with a near rank.
    pub fn reinject_offloaded(
        &mut self,
        pkt: Packet,
        port: PortId,
        rank: u32,
        now: SimTime,
    ) -> IngressResult {
        // Bypass the offload check for near ranks by construction: the
        // caller recalls with lead < keep_ranks slices.
        self.admit(pkt, port, rank, now)
    }

    /// The push-back generator's statistics.
    pub fn pushback_stats(&self) -> (u64, u64) {
        (self.pushback.events, self.pushback.emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openoptics_proto::HostId;
    use openoptics_routing::{MultipathMode, RouteAction, RouteMatch};

    fn cfg(num_slices: u32) -> TorConfig {
        TorConfig::basic(NodeId(0), SliceConfig::new(2_000, num_slices, 200), 2)
    }

    fn entry(arr: Option<u32>, dst: NodeId, port: PortId, dep: Option<u32>) -> RouteEntry {
        RouteEntry {
            node: NodeId(0),
            m: RouteMatch { arr_slice: arr, dst },
            actions: vec![(RouteAction { port, dep_slice: dep, push_source_route: None }, 1)],
            multipath: MultipathMode::None,
        }
    }

    fn pkt(id: u64, dst: NodeId) -> Packet {
        Packet::data(id, 1, NodeId(0), dst, HostId(0), HostId(9), 1000, 0, SimTime::ZERO)
    }

    #[test]
    fn local_delivery_short_circuits() {
        let mut t = ToRSwitch::new(cfg(8));
        let r = t.ingress(pkt(1, NodeId(0)), SimTime::from_ns(300));
        assert!(matches!(r.decision, IngressDecision::DeliverLocal(_)));
        assert_eq!(t.counters.delivered_local, 1);
    }

    #[test]
    fn no_route_returns_packet() {
        let mut t = ToRSwitch::new(cfg(8));
        let r = t.ingress(pkt(1, NodeId(3)), SimTime::from_ns(300));
        match r.decision {
            IngressDecision::NoRoute(p) => assert_eq!(p.dst, NodeId(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn enqueue_rank_matches_departure_slice() {
        let mut t = ToRSwitch::new(cfg(8));
        // Arrive slice 0, depart slice 3 -> rank 3.
        t.install_routes([entry(Some(0), NodeId(3), PortId(1), Some(3))]);
        let r = t.ingress(pkt(1, NodeId(3)), SimTime::from_ns(300));
        match r.decision {
            IngressDecision::Enqueued { port, rank } => {
                assert_eq!(port, PortId(1));
                assert_eq!(rank, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Not transmittable now (queue paused)...
        assert!(!t.has_active_traffic(PortId(1)));
        // ...but after three rotations it is.
        for i in 1..=3u64 {
            t.rotate(SimTime::from_ns(2_000 * i));
        }
        assert!(t.has_active_traffic(PortId(1)));
        let (p, tx) =
            t.pop_if_fits(PortId(1), SimTime::from_ns(6_300), 0).expect("head fits the slice");
        assert_eq!(p.id, 1);
        assert!(tx > 0);
    }

    #[test]
    fn tail_that_misses_slice_waits() {
        let mut t = ToRSwitch::new(cfg(8));
        t.install_routes([entry(Some(0), NodeId(3), PortId(0), Some(0))]);
        t.ingress(pkt(1, NodeId(3)), SimTime::from_ns(200));
        // 1064-byte wire packet at 100 Gbps = ~85 ns; only 50 ns left.
        assert!(t.pop_if_fits(PortId(0), SimTime::from_ns(1_950), 0).is_none());
        // Earlier in the slice it fits.
        assert!(t.pop_if_fits(PortId(0), SimTime::from_ns(1_000), 0).is_some());
    }

    #[test]
    fn source_route_overrides_table() {
        use openoptics_proto::packet::{SourceHop, SourceRoute};
        let mut t = ToRSwitch::new(cfg(8));
        // Table says port 0; the packet carries a source route via port 1.
        t.install_routes([entry(Some(0), NodeId(3), PortId(0), Some(0))]);
        let mut p = pkt(1, NodeId(3));
        p.source_route =
            Some(SourceRoute::new(vec![SourceHop { port: PortId(1), dep_slice: Some(2) }]));
        let r = t.ingress(p, SimTime::from_ns(300));
        match r.decision {
            IngressDecision::Enqueued { port, rank } => {
                assert_eq!(port, PortId(1));
                assert_eq!(rank, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn congestion_drop_policy() {
        let mut c = cfg(8);
        c.congestion = CongestionConfig {
            detection_enabled: true,
            threshold_bytes: 1_000_000,
            policy: CongestionPolicy::Drop,
        };
        let mut t = ToRSwitch::new(c);
        t.install_routes([entry(Some(0), NodeId(3), PortId(0), Some(1))]);
        // Admissible for a future slice: 100 Gbps x 1800 ns = 22_500 B.
        // 21 x 1064 B = 22_344 B fit; the 22nd exceeds.
        let mut dropped = 0;
        for i in 0..25 {
            let r = t.ingress(pkt(i, NodeId(3)), SimTime::from_ns(300));
            if matches!(r.decision, IngressDecision::Dropped(DropReason::Congestion)) {
                dropped += 1;
            }
        }
        assert!(dropped >= 3, "expected tail drops, got {dropped}");
        assert_eq!(t.counters.dropped_congestion, dropped);
    }

    #[test]
    fn congestion_defer_moves_to_later_slice() {
        let mut c = cfg(8);
        c.congestion.policy = CongestionPolicy::Defer { max_extra_slices: 4 };
        let mut t = ToRSwitch::new(c);
        t.install_routes([entry(Some(0), NodeId(3), PortId(0), Some(1))]);
        let mut ranks = vec![];
        for i in 0..30 {
            let r = t.ingress(pkt(i, NodeId(3)), SimTime::from_ns(300));
            if let IngressDecision::Enqueued { rank, .. } = r.decision {
                ranks.push(rank);
            }
        }
        assert!(ranks.iter().any(|&r| r > 1), "no packet deferred: {ranks:?}");
        assert!(t.counters.deferred > 0);
        assert_eq!(t.counters.dropped_congestion, 0);
    }

    #[test]
    fn congestion_trim_keeps_header() {
        let mut c = cfg(8);
        c.congestion.policy = CongestionPolicy::Trim;
        let mut t = ToRSwitch::new(c);
        t.install_routes([entry(Some(0), NodeId(3), PortId(0), Some(1))]);
        let mut saw_trim = false;
        for i in 0..30 {
            let r = t.ingress(pkt(i, NodeId(3)), SimTime::from_ns(300));
            if matches!(r.decision, IngressDecision::Trimmed { .. }) {
                saw_trim = true;
            }
        }
        assert!(saw_trim);
        assert!(t.counters.trimmed > 0);
    }

    #[test]
    fn pushback_emitted_once_on_full() {
        let mut c = cfg(8);
        c.pushback_enabled = true;
        c.congestion.policy = CongestionPolicy::Drop;
        let mut t = ToRSwitch::new(c);
        t.install_routes([entry(Some(0), NodeId(3), PortId(0), Some(1))]);
        let mut msgs = 0;
        for i in 0..40 {
            let r = t.ingress(pkt(i, NodeId(3)), SimTime::from_ns(300));
            if r.pushback.is_some() {
                msgs += 1;
            }
        }
        assert_eq!(msgs, 1, "push-back must deduplicate per (dst, slice, cycle)");
    }

    #[test]
    fn rank_overflow_without_offload_drops() {
        let mut c = cfg(64); // 64 slices but only 32 queues
        c.num_queues = 32;
        let mut t = ToRSwitch::new(c);
        t.install_routes([entry(Some(0), NodeId(3), PortId(0), Some(40))]);
        let r = t.ingress(pkt(1, NodeId(3)), SimTime::from_ns(300));
        assert!(matches!(r.decision, IngressDecision::Dropped(DropReason::RankOverflow)));
    }

    #[test]
    fn offload_parks_far_ranks_and_recalls() {
        let mut c = cfg(64);
        c.num_queues = 32;
        c.offload = Some(OffloadPolicy { keep_ranks: 8, return_lead_ns: 3_000 });
        let mut t = ToRSwitch::new(c);
        t.install_routes([entry(Some(0), NodeId(3), PortId(0), Some(40))]);
        let r = t.ingress(pkt(1, NodeId(3)), SimTime::from_ns(300));
        match r.decision {
            IngressDecision::Offloaded { abs_slice, .. } => assert_eq!(abs_slice, 40),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.offload_book.parked_packets(), 1);
        // Recall due at slice 40 start (80_000 ns) minus 3_000 ns lead.
        let recall = t.next_offload_recall().expect("a recall is pending");
        assert_eq!(recall, SimTime::from_ns(77_000));
        let due = t.offload_due(recall);
        assert_eq!(due.len(), 1);
    }

    #[test]
    fn buffer_telemetry_tracks_peak() {
        let mut t = ToRSwitch::new(cfg(8));
        t.install_routes([entry(Some(0), NodeId(3), PortId(0), Some(2))]);
        for i in 0..5 {
            t.ingress(pkt(i, NodeId(3)), SimTime::from_ns(300));
        }
        assert_eq!(t.buffer_packets(), 5);
        assert_eq!(t.buffer_bytes(), 5 * 1064);
        assert_eq!(t.peak_buffer_bytes, 5 * 1064);
        assert_eq!(t.port_buffer_bytes(PortId(0)), 5 * 1064);
        assert_eq!(t.port_buffer_bytes(PortId(1)), 0);
    }

    #[test]
    fn attached_telemetry_observes_mechanics() {
        use openoptics_telemetry::Registry;
        let reg = Registry::enabled(1024);
        let mut t = ToRSwitch::new(cfg(8));
        t.attach_telemetry(&reg);
        t.install_routes([entry(Some(0), NodeId(3), PortId(0), Some(0))]);
        t.ingress(pkt(1, NodeId(3)), SimTime::from_ns(200));
        // Head misses the slice tail at 1_950 ns (needs ~85 ns, 50 left).
        assert!(t.pop_if_fits(PortId(0), SimTime::from_ns(1_950), 0).is_none());
        t.rotate(SimTime::from_ns(2_000));
        let snap = reg.snapshot(SimTime::from_ns(2_000));
        assert_eq!(snap.counter("tor.slice_miss{node=N0}"), 1);
        assert_eq!(snap.counter("tor.rotations{node=N0}"), 1);
        let (_, eqo) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "tor.eqo_abs_err_bytes{node=N0}")
            .expect("eqo histogram registered");
        assert_eq!(eqo.count, 1, "one admission, one EQO sample");
        let events: Vec<&'static str> =
            reg.trace().records().iter().map(|r| r.kind.name()).collect();
        assert_eq!(events, vec!["eqo_sample", "slice_miss", "slice_rotate"]);
    }

    #[test]
    fn static_single_slice_acts_as_flow_table() {
        // num_slices = 1: wildcard entries, immediate transmission.
        let mut t = ToRSwitch::new(cfg(1));
        t.install_routes([entry(None, NodeId(3), PortId(0), None)]);
        let r = t.ingress(pkt(1, NodeId(3)), SimTime::from_ns(5));
        assert!(matches!(r.decision, IngressDecision::Enqueued { rank: 0, .. }));
        // pop works regardless of slice remaining (static mode).
        assert!(t.pop_if_fits(PortId(0), SimTime::from_ns(1_999), 0).is_some());
    }
}
