//! Calendar queues (§5.1).
//!
//! Each egress port owns a ring of `N` queues. Queue `(active + rank) % N`
//! buffers packets departing `rank` slices in the future ("the rank of an
//! ingress packet is the difference between its departure time slice and
//! arrival time slice"). At every slice boundary the rotation pauses the
//! active queue and resumes the next — triggered in hardware by the on-chip
//! packet generator, here by the engine's per-node rotation event.

use openoptics_sim::bytequeue::ByteQueue;

/// A set of calendar queues for one egress port.
#[derive(Debug, Clone)]
pub struct CalendarPort<T> {
    queues: Vec<ByteQueue<T>>,
    active: usize,
    rotations: u64,
    /// Packets that arrived with a rank too large for the ring (counted,
    /// rejected by `enqueue`).
    pub rank_overflow: u64,
}

impl<T> CalendarPort<T> {
    /// `num_queues` queues of `queue_capacity` bytes each. All queues start
    /// paused except queue 0, the active one.
    pub fn new(num_queues: usize, queue_capacity: u64) -> Self {
        assert!(num_queues >= 1);
        let mut queues: Vec<ByteQueue<T>> =
            (0..num_queues).map(|_| ByteQueue::new(queue_capacity)).collect();
        for q in queues.iter_mut().skip(1) {
            q.pause();
        }
        CalendarPort { queues, active: 0, rotations: 0, rank_overflow: 0 }
    }

    /// Number of queues in the ring.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Index of the active queue.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// Ring index that rank `rank` maps to.
    pub fn index_for_rank(&self, rank: u32) -> usize {
        (self.active + rank as usize) % self.queues.len()
    }

    /// Whether a rank is representable without wrapping onto a nearer slice.
    pub fn rank_fits(&self, rank: u32) -> bool {
        (rank as usize) < self.queues.len()
    }

    /// Enqueue an item departing `rank` slices from now.
    ///
    /// Fails with `RankOverflow` when the ring is too short for the rank
    /// (the condition buffer offloading exists to solve, §5.2) and
    /// `QueueFull` when the target queue lacks capacity.
    pub fn enqueue(&mut self, rank: u32, len: u32, item: T) -> Result<usize, EnqueueError<T>> {
        if !self.rank_fits(rank) {
            self.rank_overflow += 1;
            return Err(EnqueueError::RankOverflow(item));
        }
        let idx = self.index_for_rank(rank);
        match self.queues[idx].push(len, item) {
            Ok(()) => Ok(idx),
            Err(item) => Err(EnqueueError::QueueFull(item)),
        }
    }

    /// Whether an item of `len` bytes fits the queue for `rank` (ground
    /// truth; the data plane must use the EQO estimate instead, §5.2).
    pub fn would_fit(&self, rank: u32, len: u32) -> bool {
        self.rank_fits(rank) && self.queues[self.index_for_rank(rank)].would_fit(len)
    }

    /// Rotate at a slice boundary: pause the active queue, activate the
    /// next. Leftover packets in the paused queue wait a full ring cycle —
    /// the slice-miss delay the congestion service guards against.
    pub fn rotate(&mut self) {
        self.queues[self.active].pause();
        self.active = (self.active + 1) % self.queues.len();
        self.queues[self.active].resume();
        self.rotations += 1;
        if cfg!(feature = "strict-invariants") {
            // Exactly the active queue may be unpaused; a second live queue
            // would let packets leave out of slice order.
            for (i, q) in self.queues.iter().enumerate() {
                assert_eq!(
                    q.is_paused(),
                    i != self.active,
                    "calendar ring pause state inconsistent at queue {i} \
                     (active {})",
                    self.active,
                );
            }
        }
    }

    /// Pop the head of the active queue (respects pause — but the active
    /// queue is always resumed).
    pub fn pop_active(&mut self) -> Option<(u32, T)> {
        self.queues[self.active].pop()
    }

    /// Peek the head of the active queue without dequeuing.
    pub fn peek_active(&self) -> Option<&(u32, T)> {
        self.queues[self.active].peek()
    }

    /// Bytes in the active queue.
    pub fn active_bytes(&self) -> u64 {
        self.queues[self.active].bytes()
    }

    /// Bytes in the queue at ring index `idx`.
    pub fn queue_bytes(&self, idx: usize) -> u64 {
        self.queues[idx].bytes()
    }

    /// Items in the queue at ring index `idx`.
    pub fn queue_len(&self, idx: usize) -> usize {
        self.queues[idx].len()
    }

    /// Total buffered bytes across the ring.
    pub fn total_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.bytes()).sum()
    }

    /// Total buffered items across the ring.
    pub fn total_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// High-water mark of total occupancy (sum of per-queue peaks is an
    /// over-estimate; this tracks the per-queue peaks summed, which is what
    /// Table 3 reports per-port anyway).
    pub fn peak_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.peak_bytes()).sum()
    }

    /// Reset per-queue peaks.
    pub fn reset_peaks(&mut self) {
        for q in &mut self.queues {
            q.reset_peak();
        }
    }

    /// Rotations performed.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Drain up to `max_items` from the queue at ring index `idx`
    /// regardless of pause state — used by buffer offloading to move a
    /// far-future queue onto a host.
    pub fn drain_queue(&mut self, idx: usize, max_items: usize) -> Vec<(u32, T)> {
        let mut out = Vec::new();
        while out.len() < max_items {
            match self.queues[idx].pop_even_if_paused() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        out
    }
}

/// Why an enqueue failed.
#[derive(Debug)]
pub enum EnqueueError<T> {
    /// Rank beyond the ring size (needs offloading).
    RankOverflow(T),
    /// Target queue is out of capacity.
    QueueFull(T),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_active_queue_pops() {
        let mut cp: CalendarPort<&str> = CalendarPort::new(4, 10_000);
        cp.enqueue(0, 100, "now").expect("rank fits the ring with capacity to spare");
        cp.enqueue(1, 100, "next").expect("rank fits the ring with capacity to spare");
        assert_eq!(cp.pop_active(), Some((100, "now")));
        assert_eq!(cp.pop_active(), None); // "next" is paused
        cp.rotate();
        assert_eq!(cp.pop_active(), Some((100, "next")));
    }

    #[test]
    fn rank_maps_relative_to_active() {
        let mut cp: CalendarPort<u32> = CalendarPort::new(4, 10_000);
        assert_eq!(cp.index_for_rank(2), 2);
        cp.rotate();
        assert_eq!(cp.active_index(), 1);
        assert_eq!(cp.index_for_rank(2), 3);
        assert_eq!(cp.index_for_rank(3), 0); // wraps
    }

    #[test]
    fn rank_overflow_rejected_and_counted() {
        let mut cp: CalendarPort<u32> = CalendarPort::new(4, 10_000);
        assert!(matches!(cp.enqueue(4, 100, 7), Err(EnqueueError::RankOverflow(7))));
        assert_eq!(cp.rank_overflow, 1);
        assert!(cp.rank_fits(3));
        assert!(!cp.rank_fits(4));
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut cp: CalendarPort<u32> = CalendarPort::new(2, 250);
        cp.enqueue(0, 200, 1).expect("rank fits the ring with capacity to spare");
        assert!(matches!(cp.enqueue(0, 100, 2), Err(EnqueueError::QueueFull(2))));
        assert!(cp.would_fit(0, 50));
        assert!(!cp.would_fit(0, 51));
        // Other queues unaffected.
        assert!(cp.would_fit(1, 250));
    }

    #[test]
    fn missed_slice_waits_full_cycle() {
        let mut cp: CalendarPort<&str> = CalendarPort::new(3, 10_000);
        cp.enqueue(0, 100, "missed").expect("rank fits the ring with capacity to spare");
        // Slice ends without the packet being sent.
        cp.rotate();
        assert_eq!(cp.pop_active(), None);
        cp.rotate();
        assert_eq!(cp.pop_active(), None);
        // Full ring cycle later the queue is active again.
        cp.rotate();
        assert_eq!(cp.pop_active(), Some((100, "missed")));
        assert_eq!(cp.rotations(), 3);
    }

    #[test]
    fn totals_and_peaks() {
        let mut cp: CalendarPort<u32> = CalendarPort::new(4, 10_000);
        cp.enqueue(0, 100, 1).expect("rank fits the ring with capacity to spare");
        cp.enqueue(1, 200, 2).expect("rank fits the ring with capacity to spare");
        cp.enqueue(1, 300, 3).expect("rank fits the ring with capacity to spare");
        assert_eq!(cp.total_bytes(), 600);
        assert_eq!(cp.total_len(), 3);
        assert_eq!(cp.active_bytes(), 100);
        cp.pop_active();
        assert_eq!(cp.peak_bytes(), 600);
        cp.reset_peaks();
        assert_eq!(cp.peak_bytes(), 500);
    }

    #[test]
    fn drain_ignores_pause() {
        let mut cp: CalendarPort<u32> = CalendarPort::new(4, 10_000);
        cp.enqueue(2, 100, 1).expect("rank fits the ring with capacity to spare");
        cp.enqueue(2, 100, 2).expect("rank fits the ring with capacity to spare");
        cp.enqueue(2, 100, 3).expect("rank fits the ring with capacity to spare");
        let idx = cp.index_for_rank(2);
        let drained = cp.drain_queue(idx, 2);
        assert_eq!(drained.len(), 2);
        assert_eq!(cp.queue_len(idx), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Model-check the calendar against a simple reference: items enqueued
    /// at a rank pop exactly `rank` rotations later (relative to enqueue),
    /// in FIFO order within a rank, and never while their queue is paused.
    #[derive(Clone, Debug)]
    enum Op {
        Enqueue { rank: u8 },
        Rotate,
        PopAll,
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (0u8..8).prop_map(|rank| Op::Enqueue { rank }),
                Just(Op::Rotate),
                Just(Op::PopAll),
            ],
            1..120,
        )
    }

    proptest! {
        #[test]
        fn matches_reference_model(ops in arb_ops()) {
            let queues = 8usize;
            let mut cp: CalendarPort<u64> = CalendarPort::new(queues, u64::MAX);
            // Reference: absolute slice -> FIFO of ids.
            let mut model: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
            let mut abs: u64 = 0;
            let mut next_id: u64 = 0;

            for op in ops {
                match op {
                    Op::Enqueue { rank } => {
                        let id = next_id;
                        next_id += 1;
                        cp.enqueue(u32::from(rank), 100, id).expect("rank fits the ring with capacity to spare");
                        model.entry(abs + rank as u64).or_default().push(id);
                    }
                    Op::Rotate => {
                        // Anything still queued for the current slice waits
                        // a full ring cycle in the real calendar.
                        if let Some(leftover) = model.remove(&abs) {
                            model.entry(abs + queues as u64).or_default().extend(leftover);
                        }
                        cp.rotate();
                        abs += 1;
                    }
                    Op::PopAll => {
                        let expect = model.remove(&abs).unwrap_or_default();
                        let mut got = vec![];
                        while let Some((_, id)) = cp.pop_active() {
                            got.push(id);
                        }
                        prop_assert_eq!(got, expect, "at abs slice {}", abs);
                    }
                }
            }
        }
    }
}
