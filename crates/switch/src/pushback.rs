//! Traffic push-back (§5.2) — switch side.
//!
//! When a packet finds its designated calendar queue full, it and all
//! subsequent packets to that queue are rejected; if the service is
//! enabled, a push-back message naming the queue's time slice is broadcast
//! to the sender's hosts, pausing their traffic toward that destination
//! for that slice. One message per `(destination, slice, cycle)` suffices —
//! this module deduplicates so the broadcast doesn't storm.

use openoptics_proto::{ControlMsg, NodeId};
use openoptics_sim::hash::FxHashSet;
use openoptics_sim::time::SliceIndex;

/// Push-back message generator for one switch.
#[derive(Debug, Clone, Default)]
pub struct PushbackGen {
    enabled: bool,
    sent: FxHashSet<(NodeId, SliceIndex, u64)>,
    /// Messages emitted (post-deduplication).
    pub emitted: u64,
    /// Full-queue events observed (pre-deduplication).
    pub events: u64,
}

impl PushbackGen {
    /// A generator; disabled generators observe events but emit nothing.
    pub fn new(enabled: bool) -> Self {
        PushbackGen { enabled, ..Default::default() }
    }

    /// Whether the service is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A packet toward `dst` found the queue for `slice` (in absolute cycle
    /// `cycle`) full. Returns the message to broadcast, if one is due.
    pub fn on_queue_full(
        &mut self,
        dst: NodeId,
        slice: SliceIndex,
        cycle: u64,
    ) -> Option<ControlMsg> {
        self.events += 1;
        if !self.enabled {
            return None;
        }
        if self.sent.insert((dst, slice, cycle)) {
            self.emitted += 1;
            Some(ControlMsg::PushBack { dst, slice, cycle })
        } else {
            None
        }
    }

    /// Drop dedup state older than `min_cycle` (bounded memory).
    pub fn gc(&mut self, min_cycle: u64) {
        self.sent.retain(|&(_, _, c)| c >= min_cycle);
    }

    /// [`PushbackGen::gc`], returning the expired keys in sorted order —
    /// each is a push-back whose embargoed cycle has passed (deassert).
    /// Sorted so trace emission is independent of hash iteration order.
    pub fn gc_collect(&mut self, min_cycle: u64) -> Vec<(NodeId, SliceIndex, u64)> {
        let mut expired: Vec<_> =
            self.sent.iter().copied().filter(|&(_, _, c)| c < min_cycle).collect();
        expired.sort_unstable();
        for k in &expired {
            self.sent.remove(k);
        }
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_once_per_dst_slice_cycle() {
        let mut g = PushbackGen::new(true);
        let m = g.on_queue_full(NodeId(3), 2, 10);
        assert_eq!(m, Some(ControlMsg::PushBack { dst: NodeId(3), slice: 2, cycle: 10 }));
        assert_eq!(g.on_queue_full(NodeId(3), 2, 10), None);
        assert_eq!(g.events, 2);
        assert_eq!(g.emitted, 1);
        // A later cycle re-arms.
        assert!(g.on_queue_full(NodeId(3), 2, 11).is_some());
        // A different destination is independent.
        assert!(g.on_queue_full(NodeId(4), 2, 10).is_some());
    }

    #[test]
    fn disabled_generator_counts_but_stays_silent() {
        let mut g = PushbackGen::new(false);
        assert_eq!(g.on_queue_full(NodeId(1), 0, 0), None);
        assert_eq!(g.events, 1);
        assert_eq!(g.emitted, 0);
    }

    #[test]
    fn gc_collect_names_expired_pushbacks() {
        let mut g = PushbackGen::new(true);
        g.on_queue_full(NodeId(2), 1, 5);
        g.on_queue_full(NodeId(1), 0, 3);
        g.on_queue_full(NodeId(1), 0, 9);
        let expired = g.gc_collect(8);
        assert_eq!(expired, vec![(NodeId(1), 0, 3), (NodeId(2), 1, 5)]);
        assert!(g.gc_collect(8).is_empty(), "second pass finds nothing");
        assert!(g.on_queue_full(NodeId(1), 0, 9).is_none(), "recent state retained");
    }

    #[test]
    fn gc_rearms_old_cycles_only() {
        let mut g = PushbackGen::new(true);
        g.on_queue_full(NodeId(1), 0, 5);
        g.on_queue_full(NodeId(1), 0, 9);
        g.gc(8);
        // Cycle 5 state gone; cycle 9 retained.
        assert!(g.on_queue_full(NodeId(1), 0, 5).is_some());
        assert!(g.on_queue_full(NodeId(1), 0, 9).is_none());
    }
}
