//! Estimated queue occupancy (EQO) — §5.2 and Appendix A.
//!
//! Commercial switches cannot read egress-queue occupancy from the ingress
//! pipeline before enqueueing (Tofino2's ghost thread is milliseconds
//! stale). OpenOptics therefore keeps a register array in the ingress
//! pipeline: incremented by each enqueued packet, decremented periodically
//! by the on-chip packet generator assuming line-rate dequeue of the
//! *active* queue, floored at zero when the queue has emptied.
//!
//! The hardware ticks every `interval_ns` (50 ns in the paper, 20 Mpps).
//! Simulating 20M events per millisecond per switch would swamp the event
//! queue, so the model applies the decrements *lazily*: whole elapsed
//! intervals are applied on every [`Eqo::refresh`], which the ToR calls at
//! each rotation and before each estimate read. Between refreshes the
//! active queue is constant, so lazy application is bit-equivalent to
//! per-tick updates.

use openoptics_sim::rate::Bandwidth;
use openoptics_sim::time::SimTime;

/// The ingress-pipeline occupancy estimator for one switch.
#[derive(Debug, Clone)]
pub struct Eqo {
    /// `regs[port][queue]` — estimated occupancy in bytes.
    regs: Vec<Vec<u64>>,
    /// Last instant up to which decrements were applied (quantized to whole
    /// intervals).
    applied_until: SimTime,
    interval_ns: u64,
    bandwidth: Bandwidth,
}

impl Eqo {
    /// Estimator for `ports` ports of `queues` queues each, decrementing
    /// every `interval_ns` at `bandwidth` line rate.
    pub fn new(ports: usize, queues: usize, interval_ns: u64, bandwidth: Bandwidth) -> Self {
        assert!(interval_ns > 0);
        Eqo {
            regs: vec![vec![0; queues]; ports],
            applied_until: SimTime::ZERO,
            interval_ns,
            bandwidth,
        }
    }

    /// The paper's chosen update interval: 50 ns (Fig. 12 sweet spot).
    pub const PAPER_INTERVAL_NS: u64 = 50;

    /// Bytes drained per update interval at line rate.
    pub fn drain_per_interval(&self) -> u64 {
        self.bandwidth.bytes_in_ns(self.interval_ns)
    }

    /// Worst-case estimation error from drain quantization alone, bytes.
    pub fn quantization_error_bytes(&self) -> u64 {
        self.drain_per_interval()
    }

    /// Pipeline overhead of the generator stream: generated packets per
    /// second over the switch's packet-processing capacity (Tofino2:
    /// 1.5 Bpps). At 50 ns this is 1.3% (§7).
    pub fn generator_overhead(&self, switch_pps: f64) -> f64 {
        (1e9 / self.interval_ns as f64) / switch_pps
    }

    /// Apply all whole elapsed intervals of line-rate drain to the active
    /// queue of each port. `active[p]` is port `p`'s active queue index.
    pub fn refresh(&mut self, now: SimTime, active: &[usize]) {
        debug_assert_eq!(active.len(), self.regs.len());
        let elapsed = now.saturating_since(self.applied_until);
        let ticks = elapsed / self.interval_ns;
        if ticks == 0 {
            return;
        }
        let drain = if cfg!(feature = "strict-invariants") {
            self.drain_per_interval()
                .checked_mul(ticks)
                .expect("EQO drain overflowed u64: interval * ticks")
        } else {
            self.drain_per_interval() * ticks
        };
        for (p, &a) in active.iter().enumerate() {
            self.regs[p][a] = self.regs[p][a].saturating_sub(drain);
        }
        self.applied_until += ticks * self.interval_ns;
        if cfg!(feature = "strict-invariants") {
            // The drain point is quantized to whole intervals, so it may lag
            // `now` by up to one interval but must never pass it or move
            // backwards (refresh with a stale `now` is a caller bug).
            assert!(
                self.applied_until <= now,
                "EQO applied_until {} overtook now {}",
                self.applied_until,
                now,
            );
        }
    }

    /// Record an enqueue of `bytes` into `(port, queue)`.
    pub fn on_enqueue(&mut self, port: usize, queue: usize, bytes: u32) {
        if cfg!(feature = "strict-invariants") {
            self.regs[port][queue] = self.regs[port][queue]
                .checked_add(bytes as u64)
                .expect("EQO register overflowed u64 on enqueue");
        } else {
            self.regs[port][queue] += bytes as u64;
        }
    }

    /// Current estimate for `(port, queue)`, bytes. Call [`Eqo::refresh`]
    /// first for an up-to-date value.
    pub fn estimate(&self, port: usize, queue: usize) -> u64 {
        self.regs[port][queue]
    }

    /// Zero a register (queue drained out-of-band, e.g. offloaded).
    pub fn reset(&mut self, port: usize, queue: usize) {
        self.regs[port][queue] = 0;
    }

    /// The configured update interval.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eqo50() -> Eqo {
        Eqo::new(2, 4, 50, Bandwidth::gbps(100))
    }

    #[test]
    fn drain_per_interval_matches_paper() {
        // 100 Gbps x 50 ns = 625 B.
        assert_eq!(eqo50().drain_per_interval(), 625);
    }

    #[test]
    fn generator_overhead_matches_paper() {
        // 20 Mpps over 1.5 Bpps = 1.3%.
        let o = eqo50().generator_overhead(1.5e9);
        assert!((o - 0.0133).abs() < 0.001, "overhead {o}");
    }

    #[test]
    fn enqueue_then_lazy_drain() {
        let mut e = eqo50();
        e.on_enqueue(0, 0, 10_000);
        // 8 intervals elapse: drains 8 * 625 = 5_000 from port 0's active q0.
        e.refresh(SimTime::from_ns(400), &[0, 0]);
        assert_eq!(e.estimate(0, 0), 5_000);
        // Non-active queues untouched.
        e.on_enqueue(0, 2, 700);
        e.refresh(SimTime::from_ns(800), &[0, 0]);
        assert_eq!(e.estimate(0, 2), 700);
    }

    #[test]
    fn floors_at_zero_like_hardware() {
        let mut e = eqo50();
        e.on_enqueue(1, 0, 100);
        e.refresh(SimTime::from_us(1), &[0, 0]);
        assert_eq!(e.estimate(1, 0), 0);
    }

    #[test]
    fn partial_intervals_not_applied() {
        let mut e = eqo50();
        e.on_enqueue(0, 0, 1_000);
        e.refresh(SimTime::from_ns(49), &[0, 0]);
        assert_eq!(e.estimate(0, 0), 1_000, "sub-interval elapse must not drain");
        e.refresh(SimTime::from_ns(99), &[0, 0]);
        assert_eq!(e.estimate(0, 0), 375, "one whole interval drains 625");
    }

    #[test]
    fn lazy_equals_eager_tick_sequence() {
        // Applying refresh every interval must equal one big refresh.
        let mut lazy = eqo50();
        let mut eager = eqo50();
        lazy.on_enqueue(0, 1, 9_999);
        eager.on_enqueue(0, 1, 9_999);
        for t in 1..=20u64 {
            eager.refresh(SimTime::from_ns(t * 50), &[1, 0]);
        }
        lazy.refresh(SimTime::from_ns(1_000), &[1, 0]);
        assert_eq!(lazy.estimate(0, 1), eager.estimate(0, 1));
    }

    #[test]
    fn error_bounded_by_interval_quantum() {
        // Ground truth vs estimate in a fill/drain scenario: the estimate
        // may lag by at most one interval quantum (625 B) plus one packet.
        let mut e = eqo50();
        let mut truth: i64 = 0;
        let mut now = 0u64;
        for i in 0..100 {
            // Enqueue a 1500 B packet every 120 ns (line rate at 100G).
            e.on_enqueue(0, 0, 1500);
            truth += 1500;
            now += 120;
            // Line-rate drain of the same amount.
            truth -= 1500;
            e.refresh(SimTime::from_ns(now), &[0, 0]);
            let est = e.estimate(0, 0) as i64;
            let err = (est - truth.max(0)).abs();
            assert!(err <= 625 + 1500, "iteration {i}: error {err}");
        }
    }
}
