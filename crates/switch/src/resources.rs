//! Tofino2 resource-usage model (Table 2).
//!
//! Table 2 reports the resource footprint of the OpenOptics P4 program on
//! an Intel Tofino2 for the 108-ToR benchmark: SRAM 3.8%, TCAM 2.3%,
//! stateful ALU 9.4%, ternary crossbar 13.8%, VLIW actions 5.6%, exact
//! crossbar 7.8% — all under 13.8%, leaving room to scale.
//!
//! Without the ASIC we model usage analytically: each structure's cost is
//! a base (parser, slice counter, rotation logic) plus linear terms in the
//! program's scale parameters (time-flow-table entries, EQO registers =
//! ports × queues, slice-count branching). Coefficients are calibrated so
//! the 108-ToR Opera configuration reproduces Table 2; the *model* then
//! predicts how usage scales to other configurations — the question the
//! paper's "sufficient room to scale up" claim raises.

/// Percentage usage of each Tofino2 resource class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceUsage {
    /// SRAM (exact-match tables, register arrays), %.
    pub sram: f64,
    /// TCAM (ternary/wildcard matching), %.
    pub tcam: f64,
    /// Stateful ALUs (EQO registers, occupancy arithmetic), %.
    pub stateful_alu: f64,
    /// Ternary crossbar (branching on slice-miss detection), %.
    pub ternary_xbar: f64,
    /// VLIW action slots, %.
    pub vliw_actions: f64,
    /// Exact-match crossbar, %.
    pub exact_xbar: f64,
}

impl ResourceUsage {
    /// The largest single-resource usage.
    pub fn max_pct(&self) -> f64 {
        [
            self.sram,
            self.tcam,
            self.stateful_alu,
            self.ternary_xbar,
            self.vliw_actions,
            self.exact_xbar,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

/// Scale parameters of a deployed OpenOptics switch program.
#[derive(Clone, Copy, Debug)]
pub struct SwitchResourceModel {
    /// Endpoint nodes in the DCN (destinations to match).
    pub num_nodes: u32,
    /// Slices per optical cycle (arrival-slice match space).
    pub num_slices: u32,
    /// Optical uplinks per switch.
    pub uplinks: u16,
    /// Calendar queues per uplink.
    pub queues_per_port: u32,
}

impl SwitchResourceModel {
    /// The §7 benchmark configuration: 108 ToRs, Opera schedule (107
    /// slices), 6 uplinks, 32 calendar queues per port.
    pub fn paper_108_tor() -> Self {
        SwitchResourceModel { num_nodes: 108, num_slices: 107, uplinks: 6, queues_per_port: 32 }
    }

    /// Full time-flow table size: one exact entry per (destination,
    /// arrival slice) pair, destinations excluding self.
    pub fn tft_entries(&self) -> u64 {
        (self.num_nodes as u64 - 1) * self.num_slices as u64
    }

    /// EQO + occupancy registers: one per (port, queue).
    pub fn registers(&self) -> u64 {
        self.uplinks as u64 * self.queues_per_port as u64
    }

    /// Predicted resource usage, %.
    ///
    /// Coefficients calibrated against Table 2 at the 108-ToR point:
    /// entries = 107 × 107 = 11_449, registers = 192.
    pub fn usage(&self) -> ResourceUsage {
        let e = self.tft_entries() as f64;
        let r = self.registers() as f64;
        let s = self.num_slices as f64;
        let u = self.uplinks as f64;
        ResourceUsage {
            // Exact-match TFT entries dominate SRAM; registers contribute.
            sram: 0.8 + e * 2.3e-4 + r * 1.9e-3,
            // Wildcard (TA fallback) entries and slice-range matches in TCAM.
            tcam: 1.0 + e * 0.8e-4 + s * 3.6e-3,
            // One sALU pair per register plus congestion arithmetic.
            stateful_alu: 2.0 + r * 3.6e-2 + u * 7.5e-2,
            // Slice-miss branching fans out with slices and uplinks.
            ternary_xbar: 5.0 + s * 6.9e-2 + u * 0.23,
            // Action slots: enqueue/defer/trim/push-back variants per port.
            vliw_actions: 3.2 + u * 0.4,
            // Exact crossbar: destination + slice keys.
            exact_xbar: 4.4 + e * 2.4e-4 + u * 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_table2() {
        let u = SwitchResourceModel::paper_108_tor().usage();
        let close = |got: f64, want: f64| (got - want).abs() < 0.15;
        assert!(close(u.sram, 3.8), "SRAM {}", u.sram);
        assert!(close(u.tcam, 2.3), "TCAM {}", u.tcam);
        assert!(close(u.stateful_alu, 9.4), "sALU {}", u.stateful_alu);
        assert!(close(u.ternary_xbar, 13.8), "tXbar {}", u.ternary_xbar);
        assert!(close(u.vliw_actions, 5.6), "VLIW {}", u.vliw_actions);
        assert!(close(u.exact_xbar, 7.8), "eXbar {}", u.exact_xbar);
    }

    #[test]
    fn all_resources_under_14_pct_at_paper_scale() {
        let u = SwitchResourceModel::paper_108_tor().usage();
        assert!(u.max_pct() < 14.0, "max {}", u.max_pct());
    }

    #[test]
    fn entry_and_register_counts() {
        let m = SwitchResourceModel::paper_108_tor();
        assert_eq!(m.tft_entries(), 107 * 107);
        assert_eq!(m.registers(), 192);
    }

    #[test]
    fn usage_scales_monotonically() {
        let small =
            SwitchResourceModel { num_nodes: 16, num_slices: 15, uplinks: 2, queues_per_port: 16 }
                .usage();
        let big = SwitchResourceModel {
            num_nodes: 256,
            num_slices: 255,
            uplinks: 8,
            queues_per_port: 32,
        }
        .usage();
        assert!(big.sram > small.sram);
        assert!(big.tcam > small.tcam);
        assert!(big.stateful_alu > small.stateful_alu);
        assert!(big.ternary_xbar > small.ternary_xbar);
    }

    #[test]
    fn headroom_supports_scaling_claim() {
        // Even at 4x the node count the model stays under 100% everywhere
        // (the paper: "leaving sufficient room to scale up to larger DCNs").
        let u = SwitchResourceModel {
            num_nodes: 432,
            num_slices: 431,
            uplinks: 6,
            queues_per_port: 32,
        }
        .usage();
        assert!(u.max_pct() < 100.0, "max {}", u.max_pct());
    }
}
