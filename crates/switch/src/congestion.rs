//! Congestion detection for calendar queues (§5.2).
//!
//! An optical circuit transmits a fixed amount of data per time slice, so a
//! calendar queue is *full* once it holds more than it can transmit in its
//! slice — a threshold that can be far below a classical ECN mark. The
//! detection condition (paper, verbatim): congestion occurs if (1) the
//! calendar queue is full — its occupancy exceeds the admissible data
//! amount for the elapsed time of the time slice (bandwidth × time) — or
//! (2) the congestion threshold is reached, whichever happens first.
//!
//! Detection is a *service*: the response is the architecture's choice
//! ([`CongestionPolicy`]) — drop (RotorNet), trim (Opera), or defer to a
//! later slice (UCMP, HOHO).

use openoptics_sim::rate::Bandwidth;
use openoptics_sim::time::{SimTime, SliceConfig};

/// The architecture's response to a full calendar queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestionPolicy {
    /// Drop the packet (tail drop).
    Drop,
    /// Trim the payload, forwarding a header-only packet the receiver can
    /// NACK (Opera-style packet trimming).
    Trim,
    /// Defer to the first later slice whose queue admits the packet, up to
    /// `max_extra_slices` ahead (UCMP/HOHO-style).
    Defer {
        /// How many slices past the planned one to try.
        max_extra_slices: u32,
    },
    /// Enqueue anyway and accept the slice miss (the packet waits a full
    /// calendar cycle) — the right response when deferral would launch the
    /// packet into a circuit that cannot reach its destination (sparse TA
    /// schedules like Mordia's demand-only slices). Detection still fires
    /// push-back.
    Wait,
}

/// Configuration of the congestion-detection service.
#[derive(Clone, Copy, Debug)]
pub struct CongestionConfig {
    /// Master switch: with detection off, packets are enqueued blindly and
    /// overflow manifests as slice misses and queue-capacity drops
    /// (Table 4, column 1).
    pub detection_enabled: bool,
    /// Classical congestion threshold (condition 2), bytes.
    pub threshold_bytes: u64,
    /// Response policy when congestion is detected.
    pub policy: CongestionPolicy,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            detection_enabled: true,
            threshold_bytes: 200_000,
            policy: CongestionPolicy::Defer { max_extra_slices: 8 },
        }
    }
}

/// Verdict for one packet against one calendar queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestionOutcome {
    /// Queue admits the packet.
    Admit,
    /// Queue is congested; apply the policy.
    Congested,
}

/// Bytes a queue for departure rank `rank` may hold and still drain within
/// its slice.
///
/// For a future slice (`rank > 0`) the admissible amount is the full data
/// window of a slice: `bandwidth × (slice − guard)`. For the *active* slice
/// (`rank == 0`) only the remaining time counts: `bandwidth × remaining`.
pub fn admissible_bytes(cfg: &SliceConfig, bandwidth: Bandwidth, rank: u32, now: SimTime) -> u64 {
    if cfg.num_slices <= 1 {
        // Static (TA / flow-table) mode: there is no slice deadline; only
        // the classical threshold (condition 2) applies.
        return u64::MAX;
    }
    if rank == 0 {
        bandwidth.bytes_in_ns(cfg.remaining_in_slice(now))
    } else {
        bandwidth.bytes_in_ns(cfg.slice_ns - cfg.guard_ns)
    }
}

/// Evaluate the detection condition for a packet of `pkt_len` bytes whose
/// target queue is estimated at `est_bytes`.
pub fn evaluate(
    config: &CongestionConfig,
    est_bytes: u64,
    pkt_len: u32,
    admissible: u64,
) -> CongestionOutcome {
    if !config.detection_enabled {
        return CongestionOutcome::Admit;
    }
    let queue_full = est_bytes + pkt_len as u64 > admissible;
    let threshold_hit = est_bytes >= config.threshold_bytes;
    if queue_full || threshold_hit {
        CongestionOutcome::Congested
    } else {
        CongestionOutcome::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SliceConfig {
        SliceConfig::new(2_000, 8, 200) // the paper's 2 us / 200 ns slices
    }

    #[test]
    fn admissible_future_slice_is_full_window() {
        // 100 Gbps x (2000 - 200) ns = 22_500 B.
        let a = admissible_bytes(&cfg(), Bandwidth::gbps(100), 3, SimTime::ZERO);
        assert_eq!(a, 22_500);
    }

    #[test]
    fn admissible_active_slice_shrinks_with_time() {
        let bw = Bandwidth::gbps(100);
        let a0 = admissible_bytes(&cfg(), bw, 0, SimTime::from_ns(200));
        let a1 = admissible_bytes(&cfg(), bw, 0, SimTime::from_ns(1_500));
        assert_eq!(a0, bw.bytes_in_ns(1_800));
        assert_eq!(a1, bw.bytes_in_ns(500));
        assert!(a1 < a0);
    }

    #[test]
    fn full_queue_detected_before_threshold() {
        // Condition (1): slice capacity can be far below the CC threshold.
        let c = CongestionConfig {
            detection_enabled: true,
            threshold_bytes: 1_000_000,
            policy: CongestionPolicy::Drop,
        };
        // Admissible 22_500: a queue at 22_000 cannot take 1500 more.
        assert_eq!(evaluate(&c, 22_000, 1_500, 22_500), CongestionOutcome::Congested);
        assert_eq!(evaluate(&c, 20_000, 1_500, 22_500), CongestionOutcome::Admit);
    }

    #[test]
    fn threshold_detected_even_when_queue_fits() {
        let c = CongestionConfig {
            detection_enabled: true,
            threshold_bytes: 10_000,
            policy: CongestionPolicy::Drop,
        };
        assert_eq!(evaluate(&c, 10_000, 100, 1_000_000), CongestionOutcome::Congested);
        assert_eq!(evaluate(&c, 9_999, 100, 1_000_000), CongestionOutcome::Admit);
    }

    #[test]
    fn disabled_detection_admits_everything() {
        let c = CongestionConfig {
            detection_enabled: false,
            threshold_bytes: 0,
            policy: CongestionPolicy::Drop,
        };
        assert_eq!(evaluate(&c, u64::MAX / 2, 1_500, 0), CongestionOutcome::Admit);
    }

    #[test]
    fn exact_fit_admits() {
        let c = CongestionConfig::default();
        assert_eq!(evaluate(&c, 21_000, 1_500, 22_500), CongestionOutcome::Admit);
        assert_eq!(evaluate(&c, 21_001, 1_500, 22_500), CongestionOutcome::Congested);
    }
}
