//! # openoptics-workload
//!
//! Workload generation and measurement for the §7 benchmarks: the paper
//! replays "the widely-used RPC, Hadoop, and KV store DCN traces … and
//! scales the load to reach 40% core link utilization as in production
//! DCNs". The original traces are not redistributable; [`dists`] provides
//! synthetic flow-size distributions matching the published statistics of
//! those traces (Homa's W4 RPC mix, Facebook's Hadoop cluster, Facebook's
//! memcached pools), [`arrivals`] generates Poisson flow arrivals scaled to
//! a target utilization, and [`fct`] measures flow-completion-time
//! distributions the way Figs. 8 and 10 report them.

pub mod arrivals;
pub mod dists;
pub mod fct;

pub use arrivals::PoissonArrivals;
pub use dists::{FlowSizeDist, Trace};
pub use fct::FctStats;
