//! Flow-size distributions for the three benchmark traces (§7).
//!
//! Synthetic empirical CDFs matching the published shape of the traces the
//! paper replays:
//!
//! * **RPC** — the Homa paper's RPC workload mix: dominated by small
//!   messages with a tail into the megabytes;
//! * **Hadoop** — Facebook's Hadoop cluster (Roy et al., SIGCOMM'15):
//!   heavier mid-range with a fat multi-megabyte tail;
//! * **KV store** — Facebook's memcached pools (Atikoglu et al.,
//!   SIGMETRICS'12): overwhelmingly tiny objects, rare large values.
//!
//! Samples are drawn by inverse-transform over a piecewise log-linear CDF.

use openoptics_sim::rng::SimRng;

/// Which benchmark trace to synthesize.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Trace {
    /// Homa-style RPC mix.
    Rpc,
    /// Facebook Hadoop.
    Hadoop,
    /// Facebook memcached/KV.
    KvStore,
}

impl Trace {
    /// All three traces, in the order Tables 3/4 list them.
    pub const ALL: [Trace; 3] = [Trace::KvStore, Trace::Rpc, Trace::Hadoop];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Trace::Rpc => "RPC",
            Trace::Hadoop => "Hadoop",
            Trace::KvStore => "KV store",
        }
    }

    /// The trace's flow-size distribution.
    ///
    /// ```
    /// use openoptics_workload::{Trace, FlowSizeDist};
    /// use openoptics_sim::SimRng;
    ///
    /// let dist = Trace::Hadoop.dist();
    /// let mut rng = SimRng::new(1);
    /// let size = dist.sample(&mut rng);
    /// let (lo, hi) = dist.range();
    /// assert!(size >= lo && size <= hi);
    /// ```
    pub fn dist(&self) -> FlowSizeDist {
        match self {
            Trace::KvStore => FlowSizeDist::from_cdf(vec![
                (64, 0.0),
                (256, 0.40),
                (512, 0.60),
                (1_024, 0.75),
                (4_096, 0.90),
                (16_384, 0.96),
                (65_536, 0.99),
                (1_048_576, 1.0),
            ]),
            Trace::Rpc => FlowSizeDist::from_cdf(vec![
                (64, 0.0),
                (256, 0.20),
                (1_024, 0.45),
                (4_096, 0.65),
                (16_384, 0.78),
                (65_536, 0.88),
                (262_144, 0.94),
                (1_048_576, 0.98),
                (10_485_760, 1.0),
            ]),
            Trace::Hadoop => FlowSizeDist::from_cdf(vec![
                (256, 0.0),
                (1_024, 0.15),
                (10_240, 0.40),
                (102_400, 0.62),
                (1_048_576, 0.80),
                (10_485_760, 0.93),
                (104_857_600, 1.0),
            ]),
        }
    }
}

/// A piecewise log-linear empirical flow-size CDF.
#[derive(Clone, Debug)]
pub struct FlowSizeDist {
    /// `(bytes, cumulative probability)`, strictly increasing in both.
    points: Vec<(u64, f64)>,
}

impl FlowSizeDist {
    /// Build from CDF anchor points. The first probability must be 0.0 and
    /// the last 1.0; both coordinates must be strictly increasing.
    pub fn from_cdf(points: Vec<(u64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        assert_eq!(points[0].1, 0.0, "CDF must start at probability 0");
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12, "CDF must end at 1");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase");
            assert!(w[0].1 < w[1].1, "probabilities must increase");
        }
        FlowSizeDist { points }
    }

    /// Inverse-transform sample: log-linear interpolation between anchors.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        self.quantile(u)
    }

    /// The size at cumulative probability `u` in `[0, 1]`.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                let f = (u - p0) / (p1 - p0);
                let ln = (s0 as f64).ln() + f * ((s1 as f64).ln() - (s0 as f64).ln());
                return ln.exp().round().max(1.0) as u64;
            }
        }
        self.points.last().expect("non-empty").0
    }

    /// Mean flow size (bytes), by numerical integration of the quantile
    /// function — the value load scaling divides by.
    pub fn mean_bytes(&self) -> f64 {
        let steps = 10_000;
        (0..steps).map(|i| self.quantile((i as f64 + 0.5) / steps as f64) as f64).sum::<f64>()
            / steps as f64
    }

    /// Smallest and largest producible sizes.
    pub fn range(&self) -> (u64, u64) {
        (self.points[0].0, self.points.last().expect("non-empty").0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_hit_anchor_points() {
        let d = Trace::KvStore.dist();
        assert_eq!(d.quantile(0.0), 64);
        assert_eq!(d.quantile(0.40), 256);
        assert_eq!(d.quantile(1.0), 1_048_576);
    }

    #[test]
    fn samples_within_range_and_mass_roughly_right() {
        let d = Trace::Rpc.dist();
        let (lo, hi) = d.range();
        let mut rng = SimRng::new(42);
        let mut small = 0;
        let n = 20_000;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            assert!((lo..=hi).contains(&s));
            if s <= 4_096 {
                small += 1;
            }
        }
        // CDF says 65% at or below 4 KB.
        let frac = small as f64 / n as f64;
        assert!((0.60..0.70).contains(&frac), "P(<=4KB) = {frac}");
    }

    #[test]
    fn trace_means_are_ordered() {
        // Hadoop flows are much larger on average than RPC, which exceeds KV.
        let kv = Trace::KvStore.dist().mean_bytes();
        let rpc = Trace::Rpc.dist().mean_bytes();
        let hadoop = Trace::Hadoop.dist().mean_bytes();
        assert!(kv < rpc, "kv {kv} < rpc {rpc}");
        assert!(rpc < hadoop, "rpc {rpc} < hadoop {hadoop}");
        // Sanity magnitude checks.
        assert!(kv < 50_000.0);
        assert!(hadoop > 1_000_000.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Trace::Hadoop.dist();
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "CDF must start")]
    fn rejects_bad_cdf() {
        FlowSizeDist::from_cdf(vec![(10, 0.5), (100, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "probabilities must increase")]
    fn rejects_flat_cdf() {
        FlowSizeDist::from_cdf(vec![(10, 0.0), (50, 0.5), (100, 0.5), (200, 1.0)]);
    }
}
