//! Poisson flow arrivals scaled to a target utilization (§7).
//!
//! The paper replays traces "scaled to reach 40% core link utilization as
//! in production DCNs" (and 70% for the Table 4 stress test). Given a
//! flow-size distribution, a per-host link capacity, and a target load,
//! the arrival rate per host is `load × capacity / (8 × mean_size)` flows
//! per second; inter-arrivals are exponential and destinations uniform
//! over the other hosts.

use crate::dists::FlowSizeDist;
use openoptics_proto::HostId;
use openoptics_sim::rate::Bandwidth;
use openoptics_sim::rng::SimRng;
use openoptics_sim::time::SimTime;

/// One generated flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowArrival {
    /// Arrival (start) time.
    pub at: SimTime,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Flow payload bytes.
    pub bytes: u64,
}

/// Poisson arrival generator over a host population.
#[derive(Debug)]
pub struct PoissonArrivals {
    hosts: Vec<HostId>,
    dist: FlowSizeDist,
    mean_gap_ns: f64,
    next_at: SimTime,
    rng: SimRng,
}

impl PoissonArrivals {
    /// A generator producing aggregate load `load` (fraction of each
    /// host's `link` capacity) across `hosts`.
    pub fn new(
        hosts: Vec<HostId>,
        dist: FlowSizeDist,
        link: Bandwidth,
        load: f64,
        seed: u64,
    ) -> Self {
        assert!(hosts.len() >= 2, "need at least two hosts");
        assert!(load > 0.0 && load <= 1.5, "load {load} out of range");
        let mean_size = dist.mean_bytes();
        // Flows/second across the whole population.
        let per_host_bps = link.bps() as f64 * load;
        let flows_per_sec_per_host = per_host_bps / (8.0 * mean_size);
        let total_rate = flows_per_sec_per_host * hosts.len() as f64;
        let mean_gap_ns = 1e9 / total_rate;
        PoissonArrivals { hosts, dist, mean_gap_ns, next_at: SimTime::ZERO, rng: SimRng::new(seed) }
    }

    /// Mean inter-arrival gap across the population, ns.
    pub fn mean_gap_ns(&self) -> f64 {
        self.mean_gap_ns
    }

    /// Draw the next flow.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> FlowArrival {
        let gap = self.rng.exp_ns(self.mean_gap_ns);
        self.next_at += gap;
        let src_i = self.rng.range(0..self.hosts.len());
        let mut dst_i = self.rng.range(0..self.hosts.len() - 1);
        if dst_i >= src_i {
            dst_i += 1;
        }
        FlowArrival {
            at: self.next_at,
            src: self.hosts[src_i],
            dst: self.hosts[dst_i],
            bytes: self.dist.sample(&mut self.rng).max(1),
        }
    }

    /// Generate every arrival up to `horizon`.
    pub fn take_until(&mut self, horizon: SimTime) -> Vec<FlowArrival> {
        let mut out = vec![];
        loop {
            let f = self.next();
            if f.at > horizon {
                break;
            }
            out.push(f);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dists::Trace;

    fn hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    #[test]
    fn offered_load_matches_target() {
        let link = Bandwidth::gbps(100);
        let load = 0.4;
        let mut gen = PoissonArrivals::new(hosts(6), Trace::KvStore.dist(), link, load, 1);
        let horizon = SimTime::from_ms(200);
        let flows = gen.take_until(horizon);
        assert!(flows.len() > 100, "too few flows: {}", flows.len());
        let total_bytes: u64 = flows.iter().map(|f| f.bytes).sum();
        let offered_bps = total_bytes as f64 * 8.0 / horizon.as_secs_f64();
        let target_bps = link.bps() as f64 * load * 6.0;
        let ratio = offered_bps / target_bps;
        assert!((0.7..1.3).contains(&ratio), "offered/target = {ratio}");
    }

    #[test]
    fn no_self_flows_and_all_hosts_used() {
        let mut gen =
            PoissonArrivals::new(hosts(4), Trace::Rpc.dist(), Bandwidth::gbps(100), 0.4, 2);
        let mut srcs = openoptics_sim::hash::FxHashSet::default();
        for _ in 0..2000 {
            let f = gen.next();
            assert_ne!(f.src, f.dst);
            srcs.insert(f.src);
        }
        assert_eq!(srcs.len(), 4);
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut gen =
            PoissonArrivals::new(hosts(3), Trace::Hadoop.dist(), Bandwidth::gbps(100), 0.4, 3);
        let mut last = SimTime::ZERO;
        for _ in 0..500 {
            let f = gen.next();
            assert!(f.at > last);
            last = f.at;
        }
    }

    #[test]
    fn seeded_reproducibility() {
        let mk = || PoissonArrivals::new(hosts(4), Trace::Rpc.dist(), Bandwidth::gbps(100), 0.4, 9);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..200 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn higher_load_means_denser_arrivals() {
        let lo = PoissonArrivals::new(hosts(4), Trace::Rpc.dist(), Bandwidth::gbps(100), 0.4, 1);
        let hi = PoissonArrivals::new(hosts(4), Trace::Rpc.dist(), Bandwidth::gbps(100), 0.7, 1);
        assert!(hi.mean_gap_ns() < lo.mean_gap_ns());
    }
}
