//! Flow-completion-time statistics (Figs. 8 and 10).
//!
//! Records per-flow `(size, start, end)` and reports the distributions the
//! paper plots: percentiles and CDFs, split into mice and elephants by the
//! customary DCN thresholds (mice < 100 KB, elephants ≥ 1 MB).

use openoptics_proto::FlowId;
use openoptics_sim::hash::FxHashMap;
use openoptics_sim::time::SimTime;

/// Mice/elephant size split, bytes.
pub const MICE_MAX_BYTES: u64 = 100_000;
/// Elephant threshold, bytes.
pub const ELEPHANT_MIN_BYTES: u64 = 1_000_000;

/// One completed flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowRecord {
    /// Flow identity.
    pub flow: FlowId,
    /// Payload bytes.
    pub bytes: u64,
    /// Start time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
}

impl FlowRecord {
    /// Flow completion time, ns.
    pub fn fct_ns(&self) -> u64 {
        self.end.saturating_since(self.start)
    }
}

/// FCT collector.
#[derive(Clone, Debug, Default)]
pub struct FctStats {
    started: FxHashMap<FlowId, (u64, SimTime)>,
    completed: Vec<FlowRecord>,
}

impl FctStats {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a flow start.
    pub fn start(&mut self, flow: FlowId, bytes: u64, at: SimTime) {
        self.started.insert(flow, (bytes, at));
    }

    /// Register a flow completion, returning the record so callers can feed
    /// latency accounting (service SLOs, flow-class sketches) without a
    /// second lookup; unknown flows are ignored (e.g. flows started before
    /// the measurement window) and return `None`.
    pub fn complete(&mut self, flow: FlowId, at: SimTime) -> Option<FlowRecord> {
        let (bytes, start) = self.started.remove(&flow)?;
        let rec = FlowRecord { flow, bytes, start, end: at };
        self.completed.push(rec);
        Some(rec)
    }

    /// Completed flows.
    pub fn completed(&self) -> &[FlowRecord] {
        &self.completed
    }

    /// Flows still outstanding.
    pub fn outstanding(&self) -> usize {
        self.started.len()
    }

    /// FCTs (ns) of flows whose size falls in `[min_bytes, max_bytes)`.
    pub fn fcts_in_range(&self, min_bytes: u64, max_bytes: u64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .completed
            .iter()
            .filter(|r| r.bytes >= min_bytes && r.bytes < max_bytes)
            .map(|r| r.fct_ns())
            .collect();
        v.sort_unstable();
        v
    }

    /// Mice-flow FCTs (sorted, ns).
    pub fn mice_fcts(&self) -> Vec<u64> {
        self.fcts_in_range(0, MICE_MAX_BYTES)
    }

    /// Elephant-flow FCTs (sorted, ns).
    pub fn elephant_fcts(&self) -> Vec<u64> {
        self.fcts_in_range(ELEPHANT_MIN_BYTES, u64::MAX)
    }

    /// Nearest-rank percentile of a sorted sample vector.
    pub fn percentile(sorted: &[u64], p: f64) -> Option<u64> {
        if sorted.is_empty() {
            return None;
        }
        let idx = ((p / 100.0 * sorted.len() as f64).ceil() as usize).saturating_sub(1);
        Some(sorted[idx.min(sorted.len() - 1)])
    }

    /// Mean of a sample vector, ns.
    pub fn mean(samples: &[u64]) -> Option<f64> {
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<u64>() as f64 / samples.len() as f64)
    }

    /// CDF points `(fct_ns, cumulative fraction)` at `resolution` evenly
    /// spaced fractions — the series Figs. 8/10 plot.
    pub fn cdf(sorted: &[u64], resolution: usize) -> Vec<(u64, f64)> {
        if sorted.is_empty() {
            return vec![];
        }
        (1..=resolution)
            .map(|i| {
                let f = i as f64 / resolution as f64;
                let idx = ((f * sorted.len() as f64).ceil() as usize).saturating_sub(1);
                (sorted[idx.min(sorted.len() - 1)], f)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stats: &mut FctStats, flow: FlowId, bytes: u64, start_ns: u64, end_ns: u64) {
        stats.start(flow, bytes, SimTime::from_ns(start_ns));
        let _ = stats.complete(flow, SimTime::from_ns(end_ns));
    }

    #[test]
    fn record_lifecycle() {
        let mut s = FctStats::new();
        s.start(1, 5_000, SimTime::from_ns(100));
        assert_eq!(s.outstanding(), 1);
        assert!(s.complete(1, SimTime::from_ns(600)).is_some());
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.completed().len(), 1);
        assert_eq!(s.completed()[0].fct_ns(), 500);
    }

    #[test]
    fn unknown_completion_ignored() {
        let mut s = FctStats::new();
        assert!(s.complete(9, SimTime::from_ns(10)).is_none());
        assert!(s.completed().is_empty());
    }

    #[test]
    fn mice_elephant_split() {
        let mut s = FctStats::new();
        rec(&mut s, 1, 4_200, 0, 1_000); // mouse
        rec(&mut s, 2, 50_000, 0, 2_000); // mouse
        rec(&mut s, 3, 500_000, 0, 3_000); // medium (neither)
        rec(&mut s, 4, 20_000_000, 0, 9_000); // elephant
        assert_eq!(s.mice_fcts(), vec![1_000, 2_000]);
        assert_eq!(s.elephant_fcts(), vec![9_000]);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(FctStats::percentile(&v, 50.0), Some(50));
        assert_eq!(FctStats::percentile(&v, 99.0), Some(99));
        assert_eq!(FctStats::percentile(&v, 99.9), Some(100));
        assert_eq!(FctStats::percentile(&v, 100.0), Some(100));
        assert_eq!(FctStats::percentile(&[], 50.0), None);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let v: Vec<u64> = (1..=1000).map(|i| i * 3).collect();
        let cdf = FctStats::cdf(&v, 20);
        assert_eq!(cdf.len(), 20);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn mean_helper() {
        assert_eq!(FctStats::mean(&[10, 20, 30]), Some(20.0));
        assert_eq!(FctStats::mean(&[]), None);
    }
}
