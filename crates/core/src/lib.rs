//! # openoptics-core
//!
//! The OpenOptics programming model — the paper's primary contribution.
//!
//! * [`config`] — the static configuration (a JSON file in the paper, §4.1)
//!   describing hardware: node/uplink counts, slice duration, link rates,
//!   OCS characteristics, service knobs;
//! * [`engine`] — the packet-level network engine that stands in for the
//!   testbed: hosts (vma stacks + NICs), ToR switches (time-flow tables +
//!   calendar queues), the optical fabric, an optional parallel electrical
//!   fabric, and the optical controller's clocking;
//! * [`net`] — [`net::OpenOpticsNet`], the user-facing object exposing the
//!   Table-1 API: `connect` / `deploy_topo` / `add` / `deploy_routing` /
//!   `collect` / `buffer_usage` / `bw_usage`, plus workload attachment;
//! * [`archs`] — preset architectures mirroring Fig. 5: Clos, c-Through,
//!   Jupiter, Mordia, RotorNet, Opera, Shale, and the semi-oblivious TA+TO
//!   hybrid (the hierarchical design is `examples/hierarchical.rs`);
//! * [`workflow`] — the unified TA control loop
//!   (`while TM = collect(): reconfigure`).

/// Architecture descriptors: schedule generators, fabric classes,
/// dispatch/pause defaults, and the routing compatibility contract.
pub mod arch;
pub mod archs;
pub mod config;
pub mod engine;
pub mod error;
pub mod json;
pub mod net;
pub mod workflow;

pub use arch::{check_compat, ArchClass, Architecture, RoutingChoice, ScheduleGen};
pub use config::{ConfigError, NetConfig, NetConfigBuilder};
pub use engine::{DispatchPolicy, Engine, PauseMode, TransportKind};
pub use error::Error;
pub use net::{DeployError, OpenOpticsNet};
pub use openoptics_faults::{
    FaultCounters, FaultError, FaultKind, FaultPlan, FaultPlanBuilder, FaultReport, FaultSpec,
};
pub use openoptics_telemetry::{
    FrameLog, QuantileSketch, SampleRow, SloSummary, SloTarget, TimeSeries,
};
pub use workflow::run_ta_loop;
