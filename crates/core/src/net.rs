//! The OpenOptics network object and user API (Table 1).
//!
//! A user creates an [`OpenOpticsNet`] from a static configuration, then
//! calls the topology, routing, and monitoring APIs — the Rust rendering of
//! the paper's Python front end. The composed entry point pairs an
//! [`Architecture`] descriptor with any compatible routing scheme:
//!
//! ```
//! use openoptics_core::{Architecture, NetConfig, OpenOpticsNet};
//! use openoptics_routing::algos::Vlb;
//! use openoptics_routing::{LookupMode, MultipathMode};
//!
//! let cfg = NetConfig::builder().node_num(8).uplink(1).slice_ns(100_000).build().unwrap();
//! let net = OpenOpticsNet::deploy(
//!     cfg,
//!     Architecture::rotornet(),
//!     Box::new(Vlb),
//!     LookupMode::PerHop,
//!     MultipathMode::PerPacket,
//! )
//! .unwrap();
//! assert!(!net.is_ta());
//! ```
//!
//! The primitive calls (`deploy_topo`, `deploy_routing`) remain available
//! for hand-built schedules.

use crate::arch::Architecture;
use crate::config::NetConfig;
use crate::engine::{Engine, Event, TransportKind};
use crate::error::Error;
use openoptics_fabric::{Circuit, LayoutError, OcsLayout, OpticalSchedule, ScheduleError};
use openoptics_host::apps::MemcachedParams;
use openoptics_proto::{FlowId, HostId, NodeId, PortId};
use openoptics_routing::{LookupMode, MultipathMode, RouteEntry, RoutingAlgorithm};
use openoptics_sim::time::SimTime;
use openoptics_sim::{run, EventQueue};
use openoptics_topo::TrafficMatrix;

/// Why a topology deployment was rejected: either the circuits are not a
/// valid schedule (port conflicts, out-of-range references) or they are not
/// physically realizable on the configured OCS structure.
#[derive(Debug)]
pub enum DeployError {
    /// Logical schedule validation failed.
    Schedule(ScheduleError),
    /// Physical OCS-structure compilation failed.
    Layout(LayoutError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Schedule(e) => write!(f, "schedule: {e}"),
            DeployError::Layout(e) => write!(f, "layout: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<ScheduleError> for DeployError {
    fn from(e: ScheduleError) -> Self {
        DeployError::Schedule(e)
    }
}

impl From<LayoutError> for DeployError {
    fn from(e: LayoutError) -> Self {
        DeployError::Layout(e)
    }
}

/// The user-facing network object.
///
/// `Clone` is derived for field-completeness; the copy shares telemetry
/// and span buffers with the original through `Rc` handles. Use
/// [`OpenOpticsNet::fork`] for the fully independent copy a what-if branch
/// needs.
#[derive(Clone)]
pub struct OpenOpticsNet {
    /// The engine carrying all network state.
    pub engine: Engine,
    queue: EventQueue<Event>,
    now: SimTime,
    staged: Vec<Circuit>,
    layout: OcsLayout,
    primed: bool,
    /// The architecture descriptor this network was deployed from
    /// ([`OpenOpticsNet::deploy`]); `None` for hand-built networks.
    arch: Option<Architecture>,
}

impl OpenOpticsNet {
    /// Create a network with an empty optical schedule (deploy one before
    /// running traffic).
    pub fn new(cfg: NetConfig) -> Self {
        let sched = OpticalSchedule::empty(cfg.slice_config(1), cfg.node_num, cfg.uplink);
        let fibers = cfg.node_num * u32::from(cfg.uplink);
        let layout = if cfg.ocs_count == 0 {
            let ports = if cfg.ocs_ports == 0 { fibers } else { cfg.ocs_ports };
            OcsLayout::single(cfg.node_num, cfg.uplink, ports)
                .expect("auto-sized single OCS always fits")
        } else {
            let per_dev = fibers.div_ceil(u32::from(cfg.ocs_count));
            let ports = if cfg.ocs_ports == 0 { per_dev } else { cfg.ocs_ports };
            let k = cfg.ocs_count;
            OcsLayout::build(k, ports, cfg.node_num, cfg.uplink, |_, p| p.0 % k)
                .expect("rail cabling fits when ports are auto-sized")
        };
        OpenOpticsNet {
            engine: Engine::new(cfg, sched),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            staged: vec![],
            layout,
            primed: false,
            arch: None,
        }
    }

    /// The unified composition entry point: build a network from an
    /// [`Architecture`] descriptor paired with `routing`. Applies the
    /// descriptor's config fixups, generates and deploys its schedule,
    /// installs the routing scheme (rejecting incompatible pairings with
    /// [`Error::Config`] — see [`crate::arch::check_compat`]), and installs
    /// the descriptor's dispatch/pause policies. The descriptor is retained
    /// so [`reconfigure`](Self::reconfigure) can regenerate the schedule
    /// later.
    pub fn deploy(
        cfg: NetConfig,
        arch: Architecture,
        routing: Box<dyn RoutingAlgorithm>,
        lookup: LookupMode,
        multipath: MultipathMode,
    ) -> Result<OpenOpticsNet, Error> {
        let mut cfg = cfg;
        arch.apply_defaults(&mut cfg);
        let mut net = OpenOpticsNet::new(cfg);
        if let Some((circuits, slices)) = arch.generate(&net.engine.cfg, &[]) {
            net.deploy_topo(&circuits, slices)?;
        }
        net.deploy_routing_boxed(routing, lookup, multipath)?;
        arch.install_policies(&mut net.engine);
        net.arch = Some(arch);
        Ok(net)
    }

    /// [`deploy`](Self::deploy) with the architecture's canonical routing
    /// pairing (what the preset builders in [`crate::archs`] use).
    pub fn deploy_preset(cfg: NetConfig, arch: Architecture) -> Result<OpenOpticsNet, Error> {
        let (algo, lookup, multipath) = arch.default_routing();
        OpenOpticsNet::deploy(cfg, arch, algo, lookup, multipath)
    }

    /// The single reconfigure hook: retarget the stored architecture's
    /// schedule generator at `tm` and redeploy the regenerated schedule.
    /// Works before the first run (instant) and mid-run (honors the OCS
    /// reconfiguration delay); the installed routing scheme is preserved
    /// and its tables recompile lazily against the new topology. Errors
    /// with [`Error::Config`] on networks not built via
    /// [`deploy`](Self::deploy).
    pub fn reconfigure(&mut self, tm: &TrafficMatrix) -> Result<(), Error> {
        let mut arch = self.arch.take().ok_or_else(|| {
            Error::Config(crate::config::ConfigError {
                field: "architecture",
                reason: "reconfigure() needs a network built by OpenOpticsNet::deploy \
                         (hand-built networks redeploy via deploy_topo)"
                    .to_string(),
            })
        })?;
        arch.schedule_mut().retarget(tm);
        let result = self.redeploy_schedule(&arch);
        self.arch = Some(arch);
        result
    }

    /// The architecture descriptor this network was deployed from, if any.
    pub fn arch(&self) -> Option<&Architecture> {
        self.arch.as_ref()
    }

    /// Mutable access to the stored architecture descriptor (reconfigure
    /// wrappers adjust generator parameters before regenerating).
    pub fn arch_mut(&mut self) -> Option<&mut Architecture> {
        self.arch.as_mut()
    }

    fn redeploy_schedule(&mut self, arch: &Architecture) -> Result<(), Error> {
        let prev = self.engine.schedule().circuits().to_vec();
        if let Some((circuits, slices)) = arch.generate(&self.engine.cfg, &prev) {
            self.deploy_topo(&circuits, slices)?;
        }
        Ok(())
    }

    /// The physical OCS cabling this network was configured with.
    pub fn layout(&self) -> &OcsLayout {
        &self.layout
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// An independent copy of the whole network at its current instant —
    /// a warm what-if branch. The fork owns deep copies of the engine,
    /// event queue, and every telemetry/trace/span buffer, so running the
    /// fork and the original produces two fully separate histories; each,
    /// run alone, is byte-identical to an uninterrupted run at any worker
    /// count.
    pub fn fork(&self) -> OpenOpticsNet {
        let mut net = self.clone();
        net.engine = self.engine.fork();
        net
    }

    /// The primitive `connect()` call: stage one circuit. Loopback circuits
    /// (a node to itself) are immediately invalid.
    pub fn connect(&mut self, circuit: Circuit) -> Result<(), Error> {
        if circuit.is_loopback() {
            return Err(Error::LoopbackCircuit(circuit));
        }
        self.staged.push(circuit);
        Ok(())
    }

    /// Circuits staged via [`OpenOpticsNet::connect`].
    pub fn staged_circuits(&self) -> &[Circuit] {
        &self.staged
    }

    /// `deploy_topo()`: validate `circuits` for a `num_slices`-slice cycle
    /// and install them. Before the simulation starts this is instant; on a
    /// running TA network it honors the OCS reconfiguration delay.
    pub fn deploy_topo(
        &mut self,
        circuits: &[Circuit],
        num_slices: u32,
    ) -> Result<(), DeployError> {
        let cfg = self.engine.cfg.slice_config(num_slices);
        let sched = OpticalSchedule::build(
            cfg,
            self.engine.cfg.node_num,
            self.engine.cfg.uplink,
            circuits,
        )?;
        // Physical feasibility: every circuit must compile onto one OCS of
        // the configured structure (§4.2's controller sanity check).
        self.layout.compile(circuits)?;
        if self.primed {
            let done = self.engine.reconfigure_schedule(sched, self.now);
            // The schedule's slice count may have changed (e.g. SORN
            // growing extra slices); keep the router's TA flag honest.
            let ta = self.is_ta();
            self.engine.refresh_router_ta(ta);
            // Once the OCS finishes moving, switches re-notify their hosts
            // of the new circuits (drives flow pausing on static schedules,
            // where no rotation would otherwise refresh the state).
            for node in 0..self.engine.cfg.node_num {
                self.queue
                    .schedule(done, Event::Timer(crate::engine::Timer::NotifyHosts(NodeId(node))));
            }
        } else {
            // The old engine is discarded below, so take its config instead
            // of cloning it.
            let netcfg = std::mem::take(&mut self.engine.cfg);
            let mut fresh = Engine::new(netcfg, sched);
            // Policies and routing survive a pre-run redeploy; only the
            // architecture descriptor module may originate these values.
            fresh.policy = self.engine.policy; // oolint: allow(arch-compose, carrying forward)
            fresh.pause_mode = self.engine.pause_mode; // oolint: allow(arch-compose, carrying forward)
            let ta = fresh.schedule().slice_config().num_slices == 1;
            fresh.adopt_router(&mut self.engine, ta);
            self.engine = fresh;
        }
        Ok(())
    }

    /// Deploy the staged circuits (then clear the staging area).
    pub fn deploy_staged(&mut self, num_slices: u32) -> Result<(), DeployError> {
        let staged = std::mem::take(&mut self.staged);
        self.deploy_topo(&staged, num_slices)
    }

    /// `deploy_routing()`: install a routing scheme. Entries are compiled
    /// lazily per (node, destination, arrival slice) as traffic needs them —
    /// equivalent to the paper's offline precomputation, evaluated on
    /// demand. `LookupMode::SourceRouting` is forced for schemes that
    /// require it.
    ///
    /// The scheme's declared capabilities are checked against the deployed
    /// schedule first ([`crate::arch::check_compat`]); an incompatible
    /// pairing — a TO scheme on a held instance, source routing on a
    /// real-OCS fabric, a within-instance search over sparse matchings —
    /// returns [`Error::Config`] instead of compiling silently-wrong
    /// tables. Deploy the topology **before** the routing scheme.
    pub fn deploy_routing<A: RoutingAlgorithm + 'static>(
        &mut self,
        algo: A,
        lookup: LookupMode,
        multipath: MultipathMode,
    ) -> Result<(), Error> {
        self.deploy_routing_boxed(Box::new(algo), lookup, multipath)
    }

    /// [`deploy_routing`](Self::deploy_routing) for an already-boxed scheme
    /// (the sweep harness composes pairings dynamically).
    pub fn deploy_routing_boxed(
        &mut self,
        algo: Box<dyn RoutingAlgorithm>,
        lookup: LookupMode,
        multipath: MultipathMode,
    ) -> Result<(), Error> {
        crate::arch::check_compat(
            algo.as_ref(),
            self.engine.schedule(),
            self.engine.cfg.emulated_fabric,
        )?;
        let lookup =
            if algo.requires_source_routing() { LookupMode::SourceRouting } else { lookup };
        let ta = self.is_ta();
        self.engine.set_router(algo, lookup, multipath, ta);
        Ok(())
    }

    /// Whether the deployed schedule is a single topology instance (TA) as
    /// opposed to a rotating TO schedule.
    pub fn is_ta(&self) -> bool {
        self.engine.schedule().slice_config().num_slices == 1
    }

    /// `add()`: install one time-flow table entry directly (debugging).
    pub fn add(&mut self, entry: RouteEntry) -> Result<(), Error> {
        let node = entry.node;
        if node.0 >= self.engine.cfg.node_num {
            return Err(Error::NodeOutOfRange { node, node_num: self.engine.cfg.node_num });
        }
        self.engine.tor_mut(node).install_routes([entry]);
        Ok(())
    }

    /// `collect(interval)`: run the network for `interval` and return the
    /// traffic matrix observed in that window.
    pub fn collect(&mut self, interval: SimTime) -> TrafficMatrix {
        self.engine.take_traffic_matrix(); // reset window
        self.run_for(interval);
        self.engine.take_traffic_matrix()
    }

    /// The c-Through-style collection mode: hosts report their pending
    /// per-destination demand (vma queue depths) instead of historical
    /// volume — what a TA controller sizes circuits against (§5.2).
    pub fn collect_pending(&self) -> TrafficMatrix {
        self.engine.host_pending_demand()
    }

    /// `buffer_usage(node, port)`: bytes buffered in the port's calendar
    /// queues right now.
    pub fn buffer_usage(&self, node: NodeId, port: PortId) -> u64 {
        self.engine.tor(node).port_buffer_bytes(port)
    }

    /// `bw_usage(node, port)`: bytes transmitted by the port so far.
    pub fn bw_usage(&self, node: NodeId, port: PortId) -> u64 {
        self.engine.port_tx_bytes(node, port)
    }

    // -- workload & execution ----------------------------------------------

    /// Declare a service: a named latency stream flows can be tagged with,
    /// with optional SLO accounting (see [`Engine::declare_service`]).
    /// Declare services before the first run so scenario-driven and
    /// programmatic setups assign identical ids.
    pub fn declare_service(
        &mut self,
        name: &str,
        slo: Option<openoptics_telemetry::SloTarget>,
    ) -> u16 {
        assert!(!self.primed, "declare services before the first run");
        self.engine.declare_service(name, slo)
    }

    /// Schedule a flow (before or during the run). `at` must not be in the
    /// simulated past once the network is running.
    pub fn add_flow(
        &mut self,
        at: SimTime,
        src: HostId,
        dst: HostId,
        bytes: u64,
        transport: TransportKind,
    ) {
        self.add_flow_tagged(at, src, dst, bytes, transport, None);
    }

    /// [`OpenOpticsNet::add_flow`] with a service tag: the flow's FCT
    /// reports into the service's latency sketch and SLO accounting.
    #[allow(clippy::too_many_arguments)]
    pub fn add_flow_tagged(
        &mut self,
        at: SimTime,
        src: HostId,
        dst: HostId,
        bytes: u64,
        transport: TransportKind,
        service: Option<u16>,
    ) {
        let idx = self.engine.add_flow_tagged(at, src, dst, bytes, transport, service);
        if self.primed {
            assert!(at >= self.now, "cannot start a flow in the simulated past");
            self.queue.schedule(at, Event::Timer(crate::engine::Timer::FlowStart(idx)));
        }
    }

    /// Inject a fault campaign (before or during the run). The plan is
    /// validated against this network's shape first; window starts must not
    /// lie in the simulated past. Each window edge becomes an ordinary
    /// `(time, seq)` event on the calendar queue, so the same plan + seed
    /// reproduces identical [`fault_report`](Self::fault_report) counters
    /// on every run and at any worker count. May be called repeatedly; new
    /// windows extend the campaign.
    pub fn inject_faults(&mut self, plan: &openoptics_faults::FaultPlan) -> Result<(), Error> {
        let not_before = if self.primed { self.now } else { SimTime::ZERO };
        let range = self.engine.set_fault_plan(plan, not_before).map_err(Error::from)?;
        if self.primed {
            // Mirror add_flow: post-prime campaigns schedule their own
            // window edges (prime() handles the pre-run case).
            for i in range {
                let Some(spec) = self.engine.fault_spec(i) else { continue };
                self.queue.schedule(spec.start, Event::Timer(crate::engine::Timer::FaultStart(i)));
                self.queue.schedule(spec.end, Event::Timer(crate::engine::Timer::FaultEnd(i)));
            }
        }
        Ok(())
    }

    /// Results of the injected fault campaign so far: campaign-wide
    /// delivery/retransmission totals plus per-fault counters (empty when
    /// no plan was injected). Deterministic for a given plan + seed.
    pub fn fault_report(&self) -> openoptics_faults::FaultReport {
        self.engine.fault_report()
    }

    /// Attach a memcached app (see [`Engine::add_memcached`]).
    pub fn add_memcached(
        &mut self,
        params: MemcachedParams,
        server: HostId,
        clients: Vec<HostId>,
        stop_at: SimTime,
    ) -> usize {
        assert!(!self.primed, "attach apps before the first run");
        self.engine.add_memcached(params, server, clients, stop_at)
    }

    /// [`OpenOpticsNet::add_memcached`] with a service tag: each op's
    /// request→response latency reports under the service's SLO.
    pub fn add_memcached_tagged(
        &mut self,
        params: MemcachedParams,
        server: HostId,
        clients: Vec<HostId>,
        stop_at: SimTime,
        service: Option<u16>,
    ) -> usize {
        assert!(!self.primed, "attach apps before the first run");
        self.engine.add_memcached_tagged(params, server, clients, stop_at, service)
    }

    /// Attach a ring allreduce (see [`Engine::add_allreduce`]).
    pub fn add_allreduce(&mut self, hosts: Vec<HostId>, data_bytes: u64) -> usize {
        assert!(!self.primed, "attach apps before the first run");
        self.engine.add_allreduce(hosts, data_bytes)
    }

    /// [`OpenOpticsNet::add_allreduce`] with a service tag: every chunk
    /// flow's FCT reports under the service's SLO.
    pub fn add_allreduce_tagged(
        &mut self,
        hosts: Vec<HostId>,
        data_bytes: u64,
        service: Option<u16>,
    ) -> usize {
        assert!(!self.primed, "attach apps before the first run");
        self.engine.add_allreduce_tagged(hosts, data_bytes, service)
    }

    /// Attach a UDP probe train (see [`Engine::add_probe_train`]).
    pub fn add_probe_train(
        &mut self,
        src: HostId,
        dst: HostId,
        interval_ns: u64,
        count: u64,
        payload: u32,
    ) -> usize {
        assert!(!self.primed, "attach apps before the first run");
        self.engine.add_probe_train(src, dst, interval_ns, count, payload)
    }

    // -- telemetry ---------------------------------------------------------

    /// The metrics registry the network reports into. Disabled (every
    /// handle detached, zero hot-path cost) when the configuration said
    /// `telemetry: false`.
    pub fn telemetry(&self) -> &openoptics_telemetry::Registry {
        self.engine.telemetry()
    }

    /// A deterministic snapshot of every metric at the current simulation
    /// time: engine-side plain counters are mirrored into the registry
    /// first, so the snapshot is complete. Stamped in sim time only —
    /// byte-identical across runs and worker counts.
    pub fn telemetry_snapshot(&self) -> openoptics_telemetry::Snapshot {
        self.engine.sync_telemetry(Some(self.queue.stats()));
        self.engine.telemetry().snapshot(self.now)
    }

    /// Export the current telemetry snapshot as `"json"` or `"csv"`.
    /// Errors if telemetry is disabled or the format is unknown.
    pub fn export_telemetry(&self, format: &str) -> Result<String, Error> {
        if !self.engine.telemetry().is_enabled() {
            return Err(openoptics_telemetry::TelemetryError::Disabled.into());
        }
        let snap = self.telemetry_snapshot();
        match format {
            "json" => Ok(snap.to_json()),
            "csv" => Ok(snap.to_csv()),
            other => {
                Err(openoptics_telemetry::TelemetryError::UnknownFormat(other.to_string()).into())
            }
        }
    }

    /// The trace-event stream captured so far, one JSON object per line
    /// (first `trace_capacity` events; later ones are counted as dropped).
    pub fn export_trace(&self) -> Result<String, Error> {
        if !self.engine.telemetry().is_enabled() {
            return Err(openoptics_telemetry::TelemetryError::Disabled.into());
        }
        Ok(self.engine.telemetry().trace().to_json_lines())
    }

    /// The sampled time series as JSON lines, one [`SampleRow`] per line
    /// (see [`openoptics_telemetry::SampleRow::to_json`]). Errors when
    /// telemetry is disabled or sampling was never configured
    /// (`sample_every_ns == 0`). Byte-identical at any worker count.
    ///
    /// [`SampleRow`]: openoptics_telemetry::SampleRow
    pub fn export_timeseries(&self) -> Result<String, Error> {
        if !self.engine.telemetry().is_enabled() || self.engine.cfg.sample_every_ns == 0 {
            return Err(openoptics_telemetry::TelemetryError::Disabled.into());
        }
        Ok(self.engine.timeseries().to_json_lines())
    }

    /// A deterministic plain-text SLO report: per-flow-class latency
    /// quantiles followed by one row per declared service (count,
    /// p50/p99/p999, SLO burn and fault attribution). Errors when telemetry
    /// is disabled.
    pub fn export_slo_report(&self) -> Result<String, Error> {
        if !self.engine.telemetry().is_enabled() {
            return Err(openoptics_telemetry::TelemetryError::Disabled.into());
        }
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== openoptics slo report @ {} ns ==", self.now.as_ns());
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12} {:>12} {:>12}",
            "class", "count", "p50_ns", "p99_ns", "p999_ns"
        );
        for (name, sk) in crate::engine::FLOW_CLASSES.iter().zip(self.engine.class_sketches()) {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>12} {:>12} {:>12}",
                name,
                sk.count(),
                sk.p50(),
                sk.p99(),
                sk.p999()
            );
        }
        let services = self.slo_summaries();
        if !services.is_empty() {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>12} {:>12} {:>12} {:>8} {:>12} {:>10} {:>8}",
                "service",
                "count",
                "p50_ns",
                "p99_ns",
                "p999_ns",
                "bad",
                "bad_fault",
                "burn_mil",
                "breach"
            );
            for s in &services {
                let (bad, bad_fault, burn, breach) = if s.has_target {
                    (
                        s.bad.to_string(),
                        s.bad_in_fault.to_string(),
                        s.burn_milli.to_string(),
                        if s.breached { "yes" } else { "no" }.to_string(),
                    )
                } else {
                    ("-".into(), "-".into(), "-".into(), "-".into())
                };
                let _ = writeln!(
                    out,
                    "{:<12} {:>8} {:>12} {:>12} {:>12} {:>8} {:>12} {:>10} {:>8}",
                    s.service, s.count, s.p50_ns, s.p99_ns, s.p999_ns, bad, bad_fault, burn, breach
                );
            }
        }
        Ok(out)
    }

    /// Per-service SLO summaries (empty when no services were declared).
    pub fn slo_summaries(&self) -> Vec<openoptics_telemetry::SloSummary> {
        self.engine.services().iter().map(|s| s.summary()).collect()
    }

    /// The subscription frame stream captured so far: sample rows, SLO
    /// state transitions, and flight-recorder dumps, in emission order.
    pub fn frames(&self) -> &openoptics_telemetry::FrameLog {
        self.engine.frames()
    }

    /// The recorded lifecycle spans as Chrome trace-event JSON (loadable
    /// in Perfetto / `chrome://tracing`). Requires `span_sample_every > 0`
    /// in the configuration; errors when span recording is off. Stamped in
    /// sim time only — byte-identical across runs and worker counts.
    pub fn export_spans_chrome_trace(&self) -> Result<String, Error> {
        if !self.engine.has_span_recording() {
            return Err(openoptics_obs::ObsError::Disabled.into());
        }
        let events = self.engine.span_events(self.now);
        openoptics_obs::chrome_trace(&events).map_err(|e| openoptics_obs::ObsError::from(e).into())
    }

    /// The recorded lifecycle spans as a deterministic plain-text report:
    /// stage totals plus per-flow lifecycle trees. Errors when span
    /// recording is off.
    pub fn export_span_report(&self) -> Result<String, Error> {
        if !self.engine.has_span_recording() {
            return Err(openoptics_obs::ObsError::Disabled.into());
        }
        let events = self.engine.span_events(self.now);
        openoptics_obs::span_report(&events).map_err(|e| openoptics_obs::ObsError::from(e).into())
    }

    /// The finalized lifecycle-span stream itself (for programmatic tree
    /// reconstruction via [`openoptics_obs::build_forest`]). Empty when
    /// span recording is off.
    pub fn span_events(&self) -> Vec<openoptics_obs::SpanEvent> {
        self.engine.span_events(self.now)
    }

    /// The deterministic sim-time profiler report: per engine phase, the
    /// event count and the simulated time attributed to it. Requires
    /// telemetry; errors when disabled.
    pub fn profiler_report(&self) -> Result<String, Error> {
        if !self.engine.profiler().is_on() {
            return Err(openoptics_obs::ObsError::Disabled.into());
        }
        Ok(self.engine.profiler().report())
    }

    /// Install a wall-clock source for profiler self-timing (the simulator
    /// never reads host time itself — callers inject an `Instant`-based
    /// closure). No-op when telemetry is disabled.
    pub fn set_profiler_clock(&self, clock: impl Fn() -> u64 + 'static) {
        self.engine.profiler().set_clock(clock);
    }

    /// The wall-clock profiler report (inclusive/exclusive real time per
    /// phase), or `None` when no clock was installed. Not deterministic —
    /// for stderr self-profiling only.
    pub fn profiler_wall_report(&self) -> Option<String> {
        self.engine.profiler().wall_report()
    }

    /// Run for `total` simulated time, taking a telemetry snapshot every
    /// `every` (and a final one at the end). The periodic-snapshot loop of
    /// a monitoring study: snapshots land at deterministic sim times.
    pub fn run_with_snapshots(
        &mut self,
        total: SimTime,
        every: SimTime,
    ) -> Vec<openoptics_telemetry::Snapshot> {
        let step = every.as_ns().max(1);
        let mut snaps = vec![];
        let end = self.now + total.as_ns();
        while self.now < end {
            let chunk = step.min(end.as_ns() - self.now.as_ns());
            self.run_for(SimTime::from_ns(chunk));
            snaps.push(self.telemetry_snapshot());
        }
        snaps
    }

    /// Run the simulation for `dur` more simulated time.
    ///
    /// With `cfg.workers > 1` the run advances in conservative-lookahead
    /// epochs (`Engine::conservative_lookahead_ns` windows) — the barrier
    /// structure sharded execution synchronizes on. The event order, and
    /// therefore every export, is byte-identical at any worker count: all
    /// events still drain from one `(time, seq)`-ordered queue, only the
    /// horizon handed to the driver changes.
    pub fn run_for(&mut self, dur: SimTime) {
        if !self.primed {
            self.engine.prime(&mut self.queue);
            self.primed = true;
        }
        let until = self.now + dur.as_ns();
        if self.engine.cfg.workers > 1 {
            let lookahead = self.engine.conservative_lookahead_ns().max(1);
            while self.now < until {
                let end =
                    SimTime::from_ns(self.now.as_ns().saturating_add(lookahead).min(until.as_ns()));
                run(&mut self.engine, &mut self.queue, end);
                self.now = end;
            }
        } else {
            run(&mut self.engine, &mut self.queue, until);
            self.now = until;
        }
    }

    /// Completed-flow FCT statistics.
    pub fn fct(&self) -> &openoptics_workload::FctStats {
        &self.engine.fct
    }

    /// Total events scheduled on this network's event queue so far — the
    /// natural unit of simulation work (events/second is the engine's
    /// throughput metric).
    pub fn events_scheduled(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Bytes delivered for a flow so far.
    pub fn flow_delivered(&self, flow: FlowId) -> u64 {
        self.engine.flow_delivered(flow)
    }

    /// Point-in-time event-queue statistics (pending/peak/far/overlay
    /// counters) — the data behind the `--profile` queue-mix line.
    pub fn queue_stats(&self) -> openoptics_sim::QueueStats {
        self.queue.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openoptics_routing::algos::{Direct, Vlb};
    use openoptics_topo::round_robin;

    fn small_cfg() -> NetConfig {
        NetConfig {
            node_num: 4,
            uplink: 1,
            hosts_per_node: 1,
            slice_ns: 10_000,
            guard_ns: 200,
            sync_err_ns: 0,
            ..Default::default()
        }
    }

    fn rotor_net(cfg: &NetConfig) -> OpenOpticsNet {
        let mut net = OpenOpticsNet::new(cfg.clone());
        let (circuits, slices) = round_robin(cfg.node_num, cfg.uplink);
        net.deploy_topo(&circuits, slices).expect("test circuits are well-formed");
        net
    }

    #[test]
    fn sampling_and_slo_accounting_are_live() {
        let cfg = NetConfig { sample_every_ns: 100_000, ..small_cfg() };
        let mut net = rotor_net(&cfg);
        net.deploy_routing(Vlb, LookupMode::PerHop, MultipathMode::PerPacket)
            .expect("VLB deploys on the test topology");
        let svc = net.declare_service(
            "bulk",
            Some(openoptics_telemetry::SloTarget {
                latency_ns: 1,
                objective_milli: 999,
                window_ns: 1_000_000,
            }),
        );
        net.add_flow_tagged(
            SimTime::from_ns(100),
            HostId(0),
            HostId(3),
            50_000,
            TransportKind::Paced,
            Some(svc),
        );
        net.run_for(SimTime::from_ms(2));
        // Sampling ticked: rows recorded and mirrored into the frame log.
        let ts = net.export_timeseries().expect("sampling is on");
        assert!(ts.lines().count() >= 2, "expected multiple sample rows, got:\n{ts}");
        assert!(!net.frames().is_empty());
        // The tagged flow completed against an unmeetable SLO target.
        let report = net.export_slo_report().expect("telemetry is on");
        assert!(report.contains("bulk"), "service row missing:\n{report}");
        let s = &net.slo_summaries()[svc as usize];
        assert_eq!(s.count, 1);
        assert_eq!(s.bad, 1);
        assert!(s.breached);
        // Disabled sampling errors out.
        let mut off = rotor_net(&small_cfg());
        off.deploy_routing(Vlb, LookupMode::PerHop, MultipathMode::PerPacket)
            .expect("testbed routing deploys");
        off.run_for(SimTime::from_ms(1));
        assert!(off.export_timeseries().is_err());
    }

    #[test]
    fn single_flow_completes_over_rotor() {
        let cfg = small_cfg();
        let mut net = rotor_net(&cfg);
        net.deploy_routing(Vlb, LookupMode::PerHop, MultipathMode::PerPacket)
            .expect("VLB deploys on the test topology");
        net.add_flow(SimTime::from_ns(100), HostId(0), HostId(3), 50_000, TransportKind::Paced);
        net.run_for(SimTime::from_ms(5));
        assert_eq!(net.fct().completed().len(), 1, "flow must complete");
        let rec = net.fct().completed()[0];
        assert_eq!(rec.bytes, 50_000);
        assert!(rec.fct_ns() > 0);
    }

    #[test]
    fn direct_routing_waits_for_circuits() {
        let cfg = small_cfg();
        let mut net = rotor_net(&cfg);
        net.deploy_routing(Direct, LookupMode::PerHop, MultipathMode::None)
            .expect("direct routing deploys on the test topology");
        net.add_flow(SimTime::from_ns(100), HostId(0), HostId(2), 10_000, TransportKind::Paced);
        net.run_for(SimTime::from_ms(5));
        assert_eq!(net.fct().completed().len(), 1);
    }

    #[test]
    fn connect_rejects_loopback() {
        let cfg = small_cfg();
        let mut net = OpenOpticsNet::new(cfg);
        let e = net.connect(Circuit::held(NodeId(1), PortId(0), NodeId(1), PortId(0)));
        assert!(matches!(e, Err(Error::LoopbackCircuit(_))));
        assert!(net.connect(Circuit::held(NodeId(0), PortId(0), NodeId(1), PortId(0))).is_ok());
        assert_eq!(net.staged_circuits().len(), 1);
    }

    #[test]
    fn deploy_topo_rejects_conflicts() {
        let cfg = small_cfg();
        let mut net = OpenOpticsNet::new(cfg);
        let bad = vec![
            Circuit::held(NodeId(0), PortId(0), NodeId(1), PortId(0)),
            Circuit::held(NodeId(0), PortId(0), NodeId(2), PortId(0)),
        ];
        assert!(net.deploy_topo(&bad, 1).is_err());
    }

    #[test]
    fn collect_sees_traffic() {
        let cfg = small_cfg();
        let mut net = rotor_net(&cfg);
        net.deploy_routing(Vlb, LookupMode::PerHop, MultipathMode::PerPacket)
            .expect("VLB deploys on the test topology");
        net.add_flow(SimTime::from_ns(100), HostId(0), HostId(3), 100_000, TransportKind::Paced);
        let tm = net.collect(SimTime::from_ms(5));
        assert!(tm.get(NodeId(0), NodeId(3)) > 0.0, "TM must record the flow");
    }

    #[test]
    fn missing_router_counts_no_route_drops() {
        // Topology deployed but no routing scheme: packets die at the first
        // lookup and the drop is attributed correctly.
        let cfg = small_cfg();
        let mut net = rotor_net(&cfg);
        net.add_flow(SimTime::from_ns(100), HostId(0), HostId(3), 20_000, TransportKind::Paced);
        net.run_for(SimTime::from_ms(2));
        assert_eq!(net.fct().completed().len(), 0);
        assert!(net.engine.counters.no_route_drops > 0);
    }

    #[test]
    fn electrical_uplink_overflow_counts_link_drops() {
        // Three hosts flood one 1 Gbps electrical fabric far beyond its
        // 16 MB uplink queue.
        let mut cfg = small_cfg();
        cfg.electrical_gbps = 1;
        cfg.hosts_per_node = 3;
        let mut net = crate::archs::clos(cfg).expect("clos deploys on the test config");
        net.engine.watchdog_retransmit = false;
        for h in [0u32, 1, 2] {
            net.add_flow(
                SimTime::from_ns(100),
                HostId(h),
                HostId(9),
                30_000_000,
                TransportKind::Paced,
            );
        }
        net.run_for(SimTime::from_ms(10));
        assert!(
            net.engine.counters.link_drops > 0,
            "overflowing the electrical uplink must surface as link drops"
        );
    }

    #[test]
    fn tdtcp_flow_completes_end_to_end() {
        use openoptics_host::tcp::TcpConfig;
        let cfg = small_cfg();
        let mut net = rotor_net(&cfg);
        net.deploy_routing(Vlb, LookupMode::PerHop, MultipathMode::PerPacket)
            .expect("VLB deploys on the test topology");
        net.add_flow(
            SimTime::from_ns(100),
            HostId(0),
            HostId(3),
            500_000,
            TransportKind::TdTcp(TcpConfig::default()),
        );
        net.run_for(SimTime::from_ms(100));
        assert_eq!(net.fct().completed().len(), 1, "TDTCP flow must finish");
    }

    #[test]
    fn bw_usage_accumulates() {
        let cfg = small_cfg();
        let mut net = rotor_net(&cfg);
        net.deploy_routing(Vlb, LookupMode::PerHop, MultipathMode::PerPacket)
            .expect("VLB deploys on the test topology");
        net.add_flow(SimTime::from_ns(100), HostId(0), HostId(3), 100_000, TransportKind::Paced);
        net.run_for(SimTime::from_ms(5));
        assert!(net.bw_usage(NodeId(0), PortId(0)) > 0);
    }
}
