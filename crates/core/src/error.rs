//! The unified error type of the public API.
//!
//! Every fallible `OpenOpticsNet` call returns `Result<_, Error>`: one enum
//! wrapping deployment rejections, configuration validation, JSON parsing,
//! and telemetry-export failures, so user programs compose calls with `?`
//! instead of inspecting booleans.

use crate::config::ConfigError;
use crate::json::JsonError;
use crate::net::DeployError;
use openoptics_fabric::{Circuit, LayoutError, ScheduleError};
use openoptics_faults::FaultError;
use openoptics_obs::ObsError;
use openoptics_proto::NodeId;
use openoptics_telemetry::TelemetryError;

/// Any failure the public API can report.
#[derive(Debug)]
pub enum Error {
    /// Topology deployment rejected (schedule validation or OCS layout).
    Deploy(DeployError),
    /// Configuration validation failed ([`crate::NetConfig::builder`]).
    Config(ConfigError),
    /// JSON configuration file malformed.
    Json(JsonError),
    /// Telemetry subsystem refused the request (disabled, unknown format).
    Telemetry(TelemetryError),
    /// Fault plan rejected ([`crate::OpenOpticsNet::inject_faults`]):
    /// malformed window or a target outside the configured network.
    Fault(FaultError),
    /// Observability request refused (span recording disabled, or the
    /// recorded stream failed a well-formedness check).
    Obs(ObsError),
    /// `connect()` was given a circuit from a node to itself.
    LoopbackCircuit(Circuit),
    /// `add()` named a node outside the configured network.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Nodes configured (`valid ids are 0..node_num`).
        node_num: u32,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Deploy(e) => write!(f, "deploy: {e}"),
            Error::Config(e) => write!(f, "config: {e}"),
            Error::Json(e) => write!(f, "json: {e}"),
            Error::Telemetry(e) => write!(f, "telemetry: {e}"),
            Error::Fault(e) => write!(f, "faults: {e}"),
            Error::Obs(e) => write!(f, "obs: {e}"),
            Error::LoopbackCircuit(c) => {
                write!(f, "loopback circuit: {:?} connects a node to itself", c)
            }
            Error::NodeOutOfRange { node, node_num } => {
                write!(f, "node {} out of range (network has {} nodes)", node.0, node_num)
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Deploy(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Json(e) => Some(e),
            Error::Telemetry(e) => Some(e),
            Error::Fault(e) => Some(e),
            Error::Obs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeployError> for Error {
    fn from(e: DeployError) -> Self {
        Error::Deploy(e)
    }
}

impl From<ScheduleError> for Error {
    fn from(e: ScheduleError) -> Self {
        Error::Deploy(DeployError::Schedule(e))
    }
}

impl From<LayoutError> for Error {
    fn from(e: LayoutError) -> Self {
        Error::Deploy(DeployError::Layout(e))
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Error::Json(e)
    }
}

impl From<TelemetryError> for Error {
    fn from(e: TelemetryError) -> Self {
        Error::Telemetry(e)
    }
}

impl From<FaultError> for Error {
    fn from(e: FaultError) -> Self {
        Error::Fault(e)
    }
}

impl From<ObsError> for Error {
    fn from(e: ObsError) -> Self {
        Error::Obs(e)
    }
}
