//! Minimal JSON support for the static configuration file.
//!
//! The build environment is offline, so `serde`/`serde_json` are not
//! available; this module provides the small subset [`crate::NetConfig`]
//! needs: a strict recursive-descent parser producing a [`Json`] tree, plus
//! string escaping for serialization. It is not a general-purpose JSON
//! library (no streaming, no number fidelity beyond `f64`).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; exact for integers below 2^53).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// Parse or type-conversion failure.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    /// Error for a document whose top level is not an object.
    pub fn not_an_object() -> Self {
        JsonError::new("expected a JSON object at the top level")
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// The value as a string, or a type error.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an unsigned integer, or a type error.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => Ok(*n as u64),
            other => Err(JsonError::new(format!("expected unsigned integer, got {other:?}"))),
        }
    }

    /// The value as a bool, or a type error.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as a number, or a type error.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as an array slice, or a type error.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// The value as an object's field list (source order), or a type error.
    pub fn as_obj(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(JsonError::new(format!("expected object, got {other:?}"))),
        }
    }

    /// Field `key` of an object (first occurrence), if present. `None` both
    /// for a missing key and for a non-object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Compact rendering with a deterministic number format: integers below
    /// 2^53 print without a decimal point, everything else uses Rust's
    /// shortest-round-trip `f64` formatting — so `parse(render(v))`
    /// reproduces `v` exactly and repeated parse/render cycles are
    /// byte-stable (the property scenario and checkpoint files rely on).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Pretty-print a value with two-space indentation.
///
/// Uses the same deterministic number and string rendering as the compact
/// [`Json`] `Display` impl, so `parse(pretty(v))` reproduces `v` exactly;
/// only the whitespace differs. Scenario and checkpoint files are written
/// in this form so they diff cleanly under version control.
pub fn pretty(v: &Json) -> String {
    let mut out = String::new();
    pretty_into(v, 0, &mut out);
    out
}

fn pretty_into(v: &Json, indent: usize, out: &mut String) {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                for _ in 0..indent + 2 {
                    out.push(' ');
                }
                pretty_into(item, indent + 2, out);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
            out.push(']');
        }
        Json::Obj(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                for _ in 0..indent + 2 {
                    out.push(' ');
                }
                out.push_str(&escape(k));
                out.push_str(": ");
                pretty_into(item, indent + 2, out);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(format!("trailing garbage at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, JsonError> {
        let b = self.peek().ok_or_else(|| JsonError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        let got = self.bump()?;
        if got != b {
            return Err(JsonError::new(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => {
                Err(JsonError::new(format!("unexpected '{}' at byte {}", c as char, self.pos)))
            }
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Json::Obj(fields)),
                c => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}' at byte {}, got '{}'",
                        self.pos - 1,
                        c as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Json::Arr(items)),
                c => {
                    return Err(JsonError::new(format!(
                        "expected ',' or ']' at byte {}, got '{}'",
                        self.pos - 1,
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump()? as char;
                            code = code * 16
                                + c.to_digit(16).ok_or_else(|| {
                                    JsonError::new(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    c => {
                        return Err(JsonError::new(format!(
                            "bad escape '\\{}' at byte {}",
                            c as char,
                            self.pos - 1
                        )))
                    }
                },
                c if c < 0x20 => {
                    return Err(JsonError::new(format!(
                        "raw control byte in string at {}",
                        self.pos - 1
                    )))
                }
                c => {
                    // Re-assemble UTF-8 continuation bytes verbatim.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if c >= 0xF0 {
                            4
                        } else if c >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        if start + len > self.bytes.len() {
                            return Err(JsonError::new("truncated UTF-8 sequence"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..start + len])
                            .map_err(|_| JsonError::new("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number scan only accepts ASCII bytes");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("bad number '{text}' at byte {start}")))
    }
}

/// Escape a string for inclusion in JSON output (adds quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5}}"#)
            .expect("literal is valid JSON");
        let Json::Obj(fields) = v else { panic!("not an object") };
        assert_eq!(fields[0], ("a".into(), Json::Num(1.0)));
        assert_eq!(
            fields[1].1,
            Json::Arr(vec![Json::Bool(true), Json::Null, Json::Str("x\n".into())])
        );
        assert_eq!(fields[2].1, Json::Obj(vec![("d".into(), Json::Num(-2.5))]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{not json").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "line\n\"quoted\"\tüñî";
        let parsed = parse(&escape(s)).expect("escape output is valid JSON");
        assert_eq!(parsed, Json::Str(s.to_string()));
    }

    #[test]
    fn typed_accessors() {
        let v = parse(r#"{"n": 3, "s": "hi", "b": false}"#).expect("literal is valid JSON");
        let Json::Obj(f) = v else { unreachable!() };
        assert_eq!(f[0].1.as_u64().expect("n is a number"), 3);
        assert_eq!(f[1].1.as_str().expect("s is a string"), "hi");
        assert!(!f[2].1.as_bool().expect("b is a bool"));
        assert!(f[0].1.as_str().is_err());
        assert!(f[1].1.as_u64().is_err());
        assert!(Json::Num(-1.0).as_u64().is_err());
        assert!(Json::Num(1.5).as_u64().is_err());
    }
}
