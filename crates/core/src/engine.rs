//! The packet-level network engine.
//!
//! This is the simulation stand-in for the paper's testbed (Fig. 7): hosts
//! with vma-style stacks and NICs, OpenOptics ToR switches, the optical
//! fabric (real-OCS or emulated profile), an optional parallel electrical
//! fabric, and the per-node clocking that rotates calendar queues. It is a
//! deterministic discrete-event simulation driven by [`Engine`]'s
//! implementation of [`openoptics_sim::World`].
//!
//! Traffic enters through flows (paced or TCP), application generators
//! (memcached, allreduce — §6), and probe trains (Fig. 13); everything else
//! — queue rotation, guardbands, EQO, congestion responses, push-back,
//! offloading — happens as a consequence.

use crate::config::NetConfig;
use openoptics_fabric::{Circuit, ClockSync, Fabric, FabricProfile, OpticalSchedule};
use openoptics_faults::{FaultCounters, FaultError, FaultKind, FaultPlan, FaultReport, FaultSpec};
use openoptics_host::apps::{MemcachedParams, RingAllreduce};
use openoptics_host::tcp::{TcpConfig, TcpReceiver, TcpSender};
use openoptics_host::tdtcp::TdTcpSender;
use openoptics_host::udp::ProbeStats;
use openoptics_host::vma::{Segment, VmaStack};
use openoptics_host::FlowAging;
use openoptics_obs::{Phase, Profiler, SpanEvent, Spans, Stage};
use openoptics_proto::packet::{PacketKind, HEADER_BYTES};
use openoptics_proto::{ControlMsg, FlowId, HostId, NodeId, Packet, PortId};
use openoptics_routing::{compile, LookupMode, MultipathMode, Path, RoutingAlgorithm};
use openoptics_sim::bytequeue::ByteQueue;
use openoptics_sim::cast::{idx_u32, to_u32, to_u8};
use openoptics_sim::hash::FxHashMap;
use openoptics_sim::rate::Bandwidth;
use openoptics_sim::time::{SimTime, SliceConfig};
use openoptics_sim::{EventQueue, SimRng, World};
use openoptics_switch::congestion::{CongestionConfig, CongestionPolicy};
use openoptics_switch::offload::OffloadPolicy;
use openoptics_switch::{IngressDecision, PipelineModel, ToRSwitch, TorConfig};
use openoptics_telemetry::{
    Counter, FlightTrigger, FrameLog, Labels, QuantileSketch, Registry, RetxKind, SampleRow,
    ServiceStats, SloTarget, SloTransition, TimeSeries, Trace, TraceKind,
};
use openoptics_topo::TrafficMatrix;
use openoptics_workload::fct::{FlowRecord, ELEPHANT_MIN_BYTES, MICE_MAX_BYTES};
use openoptics_workload::FctStats;

/// Maximum payload per packet (MTU minus headers).
pub const MSS: u32 = 1436;
/// Host-to-ToR wire + NIC pipeline latency, ns.
const HOST_WIRE_NS: u64 = 500;
/// Safety margin kept at the end of each slice when deciding whether a
/// packet's tail still fits (§7: the 34 ns rotation variance, padded).
const SLICE_END_MARGIN_NS: u64 = 40;
/// Paced-flow watchdog period, ns.
const WATCHDOG_NS: u64 = 10_000_000;
/// Sample rows kept by the time-series store (keep-first, like the trace).
const SAMPLE_CAPACITY: usize = 65_536;
/// Frame lines kept by the subscription frame log.
const FRAME_CAPACITY: usize = 65_536;
/// Flow-class labels for the per-class latency sketches, index-aligned
/// with [`Engine::class_sketches`] (mice < 100 KB ≤ medium < 1 MB ≤
/// elephants).
pub const FLOW_CLASSES: [&str; 3] = ["mice", "medium", "elephant"];

/// How hosts split traffic between the optical and electrical fabrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Everything over the optical fabric.
    OpticalOnly,
    /// Everything over the electrical fabric (Clos baseline).
    ElectricalOnly,
    /// Elephants optical, mice electrical (c-Through-style hybrid).
    MiceElectrical,
    /// Use the optical fabric whenever a direct circuit to the destination
    /// is currently up, else the electrical fabric (hybrid RotorNet /
    /// TDTCP-style, Fig. 9).
    HybridDirect,
}

/// Host-side flow-pausing behavior (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PauseMode {
    /// No pausing: packets leave as soon as the NIC frees.
    None,
    /// Hold traffic toward each destination until a direct circuit from
    /// this host's ToR is up (direct-circuit routing / c-Through elephants).
    DirectCircuit,
}

/// Transport used by a flow.
#[derive(Clone, Copy, Debug)]
pub enum TransportKind {
    /// Open-loop pacing at NIC rate with a coarse watchdog retransmit;
    /// right for FCT studies where transport dynamics are not the subject.
    Paced,
    /// The TCP model of [`openoptics_host::tcp`] (Fig. 9).
    Tcp(TcpConfig),
    /// The TDTCP-style per-topology variant of
    /// [`openoptics_host::tdtcp`]: topology 0 = optical, 1 = electrical
    /// (meaningful under [`DispatchPolicy::HybridDirect`]).
    TdTcp(TcpConfig),
}

/// Role a flow plays in an application.
#[derive(Clone, Copy, Debug)]
pub enum FlowKind {
    /// Standalone flow.
    Plain,
    /// Memcached-style request; completion triggers a response and the FCT
    /// clock stops when the *response* lands.
    Request {
        /// Response size the server sends back.
        response_bytes: u32,
    },
    /// The response leg of a request.
    Response {
        /// The request flow whose FCT completes with this response.
        of: FlowId,
    },
    /// One allreduce chunk.
    Chunk {
        /// Index into the engine's collectives.
        collective: usize,
    },
}

#[allow(clippy::large_enum_variant)] // one Transport per flow; boxing buys nothing
#[derive(Clone)]
enum Transport {
    Paced,
    Tcp { sender: TcpSender, receiver: TcpReceiver },
    TdTcp { sender: TdTcpSender, receiver: TcpReceiver },
}

#[derive(Clone)]
struct FlowState {
    src_host: HostId,
    dst_host: HostId,
    bytes: u64,
    /// Bytes handed to the vma stack so far (paced).
    queued: u64,
    /// Payload bytes that reached the destination (capped at `bytes`).
    delivered: u64,
    delivered_at_last_watchdog: u64,
    transport: Transport,
    kind: FlowKind,
    /// Declared service this flow belongs to (SLO accounting), if any.
    service: Option<u16>,
    done: bool,
}

#[derive(Clone)]
struct HostState {
    tor: NodeId,
    /// The main (optical-side) segment stack; subject to flow pausing and
    /// push-back blocks.
    vma: VmaStack,
    /// Separate sockets for mice under the c-Through-style split: drained
    /// ahead of the elephant stack and always dispatched electrically.
    vma_mice: VmaStack,
    nic_free: SimTime,
    tx_scheduled: bool,
    /// Paced flows with bytes not yet queued into vma.
    backlog: Vec<FlowId>,
    aging: FlowAging,
}

#[derive(Clone)]
struct Link {
    queue: ByteQueue<Packet>,
    busy_until: SimTime,
    draining: bool,
}

impl Link {
    fn new(capacity: u64) -> Self {
        Link { queue: ByteQueue::new(capacity), busy_until: SimTime::ZERO, draining: false }
    }
}

#[derive(Clone)]
struct MemcachedApp {
    params: MemcachedParams,
    server: HostId,
    clients: Vec<HostId>,
    stop_at: SimTime,
    service: Option<u16>,
}

#[derive(Clone)]
struct ProbeTrain {
    src: HostId,
    dst: HostId,
    interval_ns: u64,
    remaining: u64,
    payload: u32,
    stats: ProbeStats,
}

/// Simulation events.
#[allow(clippy::large_enum_variant)] // Packet-carrying events dominate by design
#[derive(Clone)]
pub enum Event {
    /// Host NIC may transmit.
    HostTx(HostId),
    /// Packet head reaches a ToR ingress pipeline.
    TorIngress(NodeId, Packet),
    /// Packet fully received by a host.
    HostRx(HostId, Packet),
    /// Slice-boundary rotation at one switch (locally clocked).
    Rotate(NodeId),
    /// An optical uplink is free to transmit.
    PortFree(NodeId, PortId),
    /// An electrical uplink is free.
    ElecFree(NodeId),
    /// A host downlink is free.
    DownlinkFree(HostId),
    /// Check for due offload recalls at a switch.
    OffloadRecall(NodeId),
    /// Re-admit a recalled offloaded packet.
    Reinject(NodeId, u64, PortId, Packet),
    /// Deliver a control message to a host.
    HostControl(HostId, ControlMsg),
    /// Application / transport timer.
    Timer(Timer),
}

/// Application and transport timers.
#[derive(Clone)]
pub enum Timer {
    /// Next memcached operation for `clients[client_idx]` of app `app`.
    MemcachedOp {
        /// Index into the engine's memcached apps.
        app: usize,
        /// Index into that app's client list.
        client_idx: usize,
    },
    /// Paced-flow progress watchdog.
    FlowWatchdog(FlowId),
    /// TCP retransmission-timeout poll.
    TcpRto(FlowId),
    /// Fire the next probe of a train.
    ProbeSend(usize),
    /// Start a pre-scheduled flow.
    FlowStart(usize),
    /// Circuit-notification broadcast: a switch tells its hosts which
    /// destinations the *next* slice connects, ahead of the boundary
    /// (the flow-pausing service's signal, §5.2).
    NotifyHosts(NodeId),
    /// Receiver NACK for a trimmed packet: re-queue the trimmed segment at
    /// the source (Opera-style trim-and-retransmit).
    NackRetx {
        /// Flow whose segment was trimmed.
        flow: FlowId,
        /// Stream sequence of the trimmed segment.
        seq: u64,
    },
    /// An injected fault window opens (index into the fault campaign).
    FaultStart(usize),
    /// An injected fault window closes.
    FaultEnd(usize),
    /// Telemetry sampling tick: append one time-series row / sample frame
    /// and re-arm. Never scheduled when `sample_every_ns` is 0.
    Sample,
}

/// Pre-scheduled flow descriptor.
#[derive(Clone)]
pub struct PendingFlow {
    /// Start time.
    pub at: SimTime,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Payload bytes.
    pub bytes: u64,
    /// Transport.
    pub transport: TransportKind,
    /// Declared service the flow reports latency under, if any.
    pub service: Option<u16>,
}

/// Aggregate packet counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineCounters {
    /// Data packets injected by hosts.
    pub host_tx_packets: u64,
    /// Data packets delivered to hosts.
    pub delivered_packets: u64,
    /// Payload bytes delivered to hosts.
    pub delivered_payload_bytes: u64,
    /// Packets lost in the optical fabric (guardband / dark circuit).
    pub fabric_drops: u64,
    /// Packets dropped at switches (congestion, capacity, rank).
    pub switch_drops: u64,
    /// Packets dropped for lack of any route.
    pub no_route_drops: u64,
    /// Packets dropped at electrical/downlink queues.
    pub link_drops: u64,
    /// Push-back broadcasts delivered to hosts.
    pub pushback_deliveries: u64,
    /// Circuit-notification messages delivered to hosts.
    pub circuit_notifications: u64,
    /// Trimmed packets received (each triggers a NACK retransmission).
    pub trimmed_received: u64,
    /// Packets held at a port because the slice guardband was open.
    pub guardband_holds: u64,
    /// Paced-flow watchdog retransmissions.
    pub watchdog_retransmits: u64,
    /// TCP retransmission timeouts that fired.
    pub rto_retransmits: u64,
    /// TCP fast retransmits (triple-duplicate ACK).
    pub fast_retransmits: u64,
    /// NACK-driven retransmissions of trimmed segments.
    pub nack_retransmits: u64,
    /// Packets destroyed by injected faults (drain-and-drop at failed
    /// ports plus transceiver-flap corruption).
    pub fault_drops: u64,
}

/// Runtime state of an injected fault campaign. Masks are rebuilt from the
/// active flags on every window edge — campaigns are tiny and transitions
/// rare, so a full rebuild keeps overlapping windows on one target correct
/// without reference counting.
#[derive(Clone, Default)]
struct FaultRuntime {
    /// All injected fault windows, campaign order (stable indices).
    specs: Vec<FaultSpec>,
    active: Vec<bool>,
    /// `(node, port)` → fault index whose window black-holes transmissions
    /// (link down / stuck OCS port). First active fault in campaign order
    /// owns the key.
    drop_mask: FxHashMap<(NodeId, PortId), usize>,
    /// `(node, port)` → fault index for transceiver-flap corruption.
    flap_mask: FxHashMap<(NodeId, PortId), usize>,
    /// node → fault index for slice-schedule corruption.
    slice_mask: FxHashMap<NodeId, usize>,
    /// node → fault index for NIC pause storms.
    pause_mask: FxHashMap<NodeId, usize>,
    /// Rotations each fault's node has missed and not yet replayed.
    rotation_lag: Vec<u32>,
    /// Schedule with link-down circuits removed — what routing compiles
    /// against while a link-down window is open. `None` = no mask.
    masked: Option<OpticalSchedule>,
    per_fault: Vec<FaultCounters>,
}

/// Live engine-side instruments: bound once at construction, `detached`
/// (inert) when telemetry is off so hot paths pay one branch.
#[derive(Clone, Default)]
struct EngineTele {
    guardband_holds: Counter,
    trace: Trace,
}

/// Lifecycle cursor for one in-flight sampled data packet: its root span
/// and whichever stage span is currently open.
#[derive(Clone)]
struct PktCursor {
    /// The packet's root span id.
    span: u64,
    /// Owning flow.
    flow: FlowId,
    /// Currently open stage span, if any.
    open: Option<(Stage, u64)>,
}

/// Engine-side observability: sampled causal lifecycle spans plus the
/// per-phase profiler. Every method early-returns on a single branch when
/// span recording is off (and compiles away entirely without the core
/// `obs` feature, where [`Spans`]/[`Profiler`] are zero-sized no-ops).
#[derive(Clone)]
struct ObsState {
    spans: Spans,
    profiler: Profiler,
    /// Flow id → its root flow span.
    flow_spans: FxHashMap<FlowId, u64>,
    /// Packet id → lifecycle cursor.
    cursors: FxHashMap<u64, PktCursor>,
}

impl ObsState {
    fn new(cfg: &NetConfig) -> Self {
        ObsState {
            spans: Spans::bounded(cfg.span_sample_every, cfg.seed, cfg.span_capacity as usize),
            profiler: if cfg.telemetry { Profiler::enabled() } else { Profiler::detached() },
            flow_spans: FxHashMap::default(),
            cursors: FxHashMap::default(),
        }
    }

    /// Open the flow's root span, if the flow falls in the sample.
    fn flow_begin(&mut self, flow: FlowId, now: SimTime) {
        if !self.spans.samples(flow) || !self.spans.admit() {
            return;
        }
        let s = self.spans.span_begin(now, 0, flow, 0, Stage::Flow, 0);
        self.flow_spans.insert(flow, s);
    }

    /// Close the flow's root span (finalization raises the end further if
    /// a retransmitted packet lands later).
    fn flow_end(&mut self, flow: FlowId, now: SimTime) {
        if let Some(s) = self.flow_spans.remove(&flow) {
            self.spans.span_end(now, s, Stage::Flow);
        }
    }

    /// Open a packet's root span under its flow, covering the host tx
    /// queue wait `[queued_at, now]` as the first stage.
    fn packet_begin(&mut self, flow: FlowId, pkt: u64, queued_at: SimTime, now: SimTime) {
        if !self.spans.is_on() {
            return;
        }
        let Some(&fs) = self.flow_spans.get(&flow) else { return };
        if !self.spans.admit() {
            return;
        }
        let at = queued_at.min(now);
        let ps = self.spans.span_begin(at, fs, flow, pkt, Stage::Packet, 0);
        let q = self.spans.span_begin(at, ps, flow, pkt, Stage::HostTxQueue, 0);
        self.spans.span_end(now, q, Stage::HostTxQueue);
        self.cursors.insert(pkt, PktCursor { span: ps, flow, open: None });
    }

    /// Close the packet's currently open stage span, if any, at `at`.
    fn close_open(&mut self, pkt: u64, at: SimTime) {
        if !self.spans.is_on() {
            return;
        }
        let Some(c) = self.cursors.get_mut(&pkt) else { return };
        if let Some((stage, s)) = c.open.take() {
            // Dynamic close: the stage is whatever was opened last. The
            // `span-paired` lint checks literal-stage begins; each stage
            // opened through [`ObsState::open`] gets its literal close in
            // one of these arms.
            match stage {
                Stage::CalendarWait => self.spans.span_end(at, s, Stage::CalendarWait),
                Stage::GuardbandHold => self.spans.span_end(at, s, Stage::GuardbandHold),
                Stage::Propagation => self.spans.span_end(at, s, Stage::Propagation),
                Stage::Rx => self.spans.span_end(at, s, Stage::Rx),
                other => self.spans.span_end(at, s, other),
            }
        }
    }

    /// Transition the packet to `stage` at `at`: closes the open stage
    /// span (stages tile — no gaps, no overlap) and opens the next.
    fn open(&mut self, pkt: u64, stage: Stage, at: SimTime) {
        if !self.spans.is_on() {
            return;
        }
        self.close_open(pkt, at);
        let Some(c) = self.cursors.get_mut(&pkt) else { return };
        let s = self.spans.span_begin(at, c.span, c.flow, pkt, stage, 0);
        c.open = Some((stage, s));
    }

    /// Begin (or continue) a guardband hold for the packet at the head of
    /// a held port. Repeated holds on the same head extend the same span.
    fn hold_begin(&mut self, pkt: u64, at: SimTime) {
        if !self.spans.is_on() {
            return;
        }
        match self.cursors.get(&pkt) {
            Some(c) if matches!(c.open, Some((Stage::GuardbandHold, _))) => {}
            Some(_) => self.open(pkt, Stage::GuardbandHold, at),
            None => {}
        }
    }

    /// The packet left a queue and serializes onto the wire for `tx` ns:
    /// closes the open wait span at `at` and records the full
    /// serialization interval (its end is already known).
    fn serialized(&mut self, pkt: u64, at: SimTime, tx: u64) {
        if !self.spans.is_on() {
            return;
        }
        self.close_open(pkt, at);
        let Some(c) = self.cursors.get(&pkt) else { return };
        let s = self.spans.span_begin(at, c.span, c.flow, pkt, Stage::Serialization, 0);
        self.spans.span_end(at + tx, s, Stage::Serialization);
    }

    /// The packet reached its destination host: close the open stage, mark
    /// the transport hand-off, and end the packet span.
    fn delivered(&mut self, pkt: u64, at: SimTime) {
        if !self.spans.is_on() {
            return;
        }
        self.close_open(pkt, at);
        if let Some(c) = self.cursors.remove(&pkt) {
            self.spans.span_mark(at, c.span, c.flow, pkt, Stage::TcpDelivery, 0);
            self.spans.span_end(at, c.span, Stage::Packet);
        }
    }

    /// The packet was dropped (`site`: 1 switch, 2 no-route, 3 fabric,
    /// 4 link queue, 5 trimmed): annotate and end the packet span.
    fn dropped(&mut self, pkt: u64, at: SimTime, site: u64) {
        if !self.spans.is_on() {
            return;
        }
        self.close_open(pkt, at);
        if let Some(c) = self.cursors.remove(&pkt) {
            self.spans.span_mark(at, c.span, c.flow, pkt, Stage::Drop, site);
            self.spans.span_end(at, c.span, Stage::Packet);
        }
    }

    /// The packet was eaten by an injected fault (`code` =
    /// `FaultKind::code`): annotate and end the packet span.
    fn fault_dropped(&mut self, pkt: u64, at: SimTime, code: u64) {
        if !self.spans.is_on() {
            return;
        }
        self.close_open(pkt, at);
        if let Some(c) = self.cursors.remove(&pkt) {
            self.spans.span_mark(at, c.span, c.flow, pkt, Stage::FaultDrop, code);
            self.spans.span_end(at, c.span, Stage::Packet);
        }
    }

    /// Annotate the flow with a retransmission trigger (`code` mirrors
    /// `RetxKind`: 1 watchdog, 2 RTO, 3 fast, 4 NACK).
    fn retransmit_mark(&mut self, flow: FlowId, at: SimTime, code: u64) {
        if !self.spans.is_on() {
            return;
        }
        if let Some(&fs) = self.flow_spans.get(&flow) {
            self.spans.span_mark(at, fs, flow, 0, Stage::Retransmit, code);
        }
    }
}

/// The profiler phase charged for an engine event.
fn phase_of(event: &Event) -> Phase {
    match event {
        Event::HostTx(_) => Phase::HostTx,
        Event::TorIngress(..) => Phase::TorIngress,
        Event::HostRx(..) => Phase::HostRx,
        Event::Rotate(_) => Phase::Rotate,
        Event::PortFree(..) => Phase::PortFree,
        Event::ElecFree(_) => Phase::ElecFree,
        Event::DownlinkFree(_) => Phase::DownlinkFree,
        Event::OffloadRecall(_) => Phase::OffloadRecall,
        Event::Reinject(..) => Phase::Reinject,
        Event::HostControl(..) => Phase::HostControl,
        Event::Timer(_) => Phase::Timer,
    }
}

/// The engine: all network state plus the event interpreter.
///
/// `Clone` is derived so it stays field-complete by construction (a new
/// field that cannot be cloned breaks the build, not determinism), but the
/// derived copy shares telemetry/obs buffers through their `Rc` handles —
/// use [`Engine::fork`] for the independent copy checkpoint forks need.
#[derive(Clone)]
pub struct Engine {
    /// Static configuration this engine was built from.
    pub cfg: NetConfig,
    slice_cfg: SliceConfig,
    fabric: Fabric,
    tors: Vec<ToRSwitch>,
    hosts: Vec<HostState>,
    /// Electrical uplink per ToR (if the electrical fabric is enabled).
    elec: Vec<Link>,
    elec_bw: Option<Bandwidth>,
    downlinks: Vec<Link>,
    port_pending: Vec<Vec<bool>>,
    /// Per-port transmitted bytes (bw_usage telemetry).
    tx_bytes_per_port: Vec<Vec<u64>>,
    router: Option<RouterSpec>,
    pipeline: PipelineModel,
    sync: ClockSync,
    flows: FxHashMap<FlowId, FlowState>,
    next_flow_id: FlowId,
    next_pkt_id: u64,
    /// Flow-completion-time collector.
    pub fct: FctStats,
    memcached: Vec<MemcachedApp>,
    probe_trains: Vec<ProbeTrain>,
    collectives: Vec<RingAllreduce>,
    /// Service tag of each collective's chunk flows, if any.
    collective_service: Vec<Option<u16>>,
    /// Completion time of each collective, once done.
    pub collective_done: Vec<Option<SimTime>>,
    /// Pre-scheduled flows (installed before run).
    pending_flows: Vec<PendingFlow>,
    tm_accum: TrafficMatrix,
    rng: SimRng,
    /// Outstanding `OffloadRecall` firing times per node. Every offloaded
    /// packet wants a recall at its batch deadline, so without dedup a
    /// slice-rank's worth of packets schedules a storm of same-time recall
    /// events of which only the first does any work (table3's dominant
    /// cost). Scheduling goes through [`Engine::schedule_recall`], which
    /// skips exact-duplicate times; the surviving event is the
    /// first-scheduled one, so the drain happens at the same (time, order)
    /// point the first duplicate fired at before.
    recall_outstanding: Vec<Vec<SimTime>>,
    /// Fabric dispatch policy.
    pub policy: DispatchPolicy,
    /// Host pausing behavior.
    pub pause_mode: PauseMode,
    /// Aggregate counters.
    pub counters: EngineCounters,
    /// When `true`, per-packet one-way delays of delivered data packets are
    /// appended to [`Engine::delay_samples`] (Table 4 telemetry).
    pub record_delays: bool,
    /// When `false`, the paced-flow watchdog stops re-sending lost bytes —
    /// loss/delay measurements then observe first-transmission behavior
    /// (open-loop trace replay) instead of a retransmission storm.
    pub watchdog_retransmit: bool,
    /// One-way delays (ns) of delivered data packets, when recording.
    pub delay_samples: Vec<u64>,
    /// Metrics registry + trace stream (disabled = every handle detached).
    telemetry: Registry,
    /// Engine-side live instruments.
    tele: EngineTele,
    /// Declared services: per-service latency sketches + SLO accounting.
    services: Vec<ServiceStats>,
    /// Per-flow-class FCT sketches (mice/medium/elephant), fed on every
    /// completion while telemetry is on.
    class_sketches: [QuantileSketch; 3],
    /// Sim-time-sampled counter/gauge/service series (empty unless
    /// `sample_every_ns > 0`).
    timeseries: TimeSeries,
    /// Rendered frame lines for streaming subscriptions (samples, SLO
    /// transitions, flight-recorder dumps).
    frames: FrameLog,
    /// Injected fault campaign, if any (`None` = sunny-day run).
    faults: Option<FaultRuntime>,
    /// Lifecycle spans + phase profiler (inert unless configured).
    obs: ObsState,
}

#[derive(Clone)]
struct RouterSpec {
    algo: Box<dyn RoutingAlgorithm>,
    lookup: LookupMode,
    multipath: MultipathMode,
    /// TA mode: wildcard-slice routing over the topology instance.
    ta: bool,
}

impl Engine {
    /// Build an engine for `schedule` under `cfg`.
    pub fn new(cfg: NetConfig, schedule: OpticalSchedule) -> Self {
        let slice_cfg = schedule.slice_config();
        let n = cfg.node_num;
        let profile = if cfg.emulated_fabric {
            FabricProfile::Emulated { propagation_ns: 100, cut_through_ns: 400 }
        } else {
            FabricProfile::RealOcs { propagation_ns: 100 }
        };
        let mut fabric = Fabric::new(schedule, profile, cfg.ocs_reconfig_ns);
        fabric.set_dead_window_ns(cfg.fabric_dead_ns.min(slice_cfg.slice_ns / 2));
        let mut rng = SimRng::new(cfg.seed);
        let sync = if cfg.sync_err_ns == 0 {
            ClockSync::perfect(n)
        } else {
            ClockSync::uniform(n, cfg.sync_err_ns, &mut rng)
        };
        let policy_cfg = CongestionConfig {
            detection_enabled: cfg.congestion_detection,
            threshold_bytes: cfg.congestion_threshold,
            policy: match cfg.congestion_policy.as_str() {
                "drop" => CongestionPolicy::Drop,
                "trim" => CongestionPolicy::Trim,
                "wait" => CongestionPolicy::Wait,
                _ => CongestionPolicy::Defer { max_extra_slices: cfg.defer_max_extra_slices },
            },
        };
        let offload = cfg.offload.then_some(OffloadPolicy {
            keep_ranks: cfg.offload_keep_ranks,
            return_lead_ns: cfg.offload_return_lead_ns,
        });
        let telemetry = Registry::new(cfg.telemetry, cfg.trace_capacity as usize);
        let tele = EngineTele {
            guardband_holds: telemetry.counter("engine.guardband_holds", Labels::None),
            trace: telemetry.trace(),
        };
        let tors: Vec<ToRSwitch> = (0..n)
            .map(|i| {
                let mut tor = ToRSwitch::new(TorConfig {
                    id: NodeId(i),
                    slice_cfg,
                    uplinks: cfg.uplink,
                    uplink_bandwidth: cfg.uplink_bandwidth(),
                    num_queues: cfg.num_queues.min(slice_cfg.num_slices as usize).max(1),
                    queue_capacity: cfg.queue_capacity,
                    congestion: policy_cfg,
                    pushback_enabled: cfg.pushback,
                    offload,
                    eqo_interval_ns: cfg.eqo_interval_ns,
                    use_true_occupancy: cfg.eqo_ground_truth,
                });
                tor.attach_telemetry(&telemetry);
                tor
            })
            .collect();
        let hosts: Vec<HostState> = (0..cfg.total_hosts())
            .map(|h| HostState {
                tor: NodeId(h / cfg.hosts_per_node),
                vma: VmaStack::new(cfg.segment_queue_bytes),
                vma_mice: VmaStack::new(cfg.segment_queue_bytes),
                nic_free: SimTime::ZERO,
                tx_scheduled: false,
                backlog: vec![],
                aging: FlowAging::new(cfg.elephant_threshold),
            })
            .collect();
        let elec = (0..n).map(|_| Link::new(16 * 1024 * 1024)).collect();
        let downlinks = (0..cfg.total_hosts()).map(|_| Link::new(16 * 1024 * 1024)).collect();
        let obs = ObsState::new(&cfg);
        Engine {
            slice_cfg,
            fabric,
            port_pending: vec![vec![false; cfg.uplink as usize]; n as usize],
            tx_bytes_per_port: vec![vec![0; cfg.uplink as usize]; n as usize],
            tors,
            hosts,
            elec,
            elec_bw: cfg.electrical_bandwidth(),
            downlinks,
            router: None,
            pipeline: PipelineModel::default(),
            sync,
            flows: FxHashMap::default(),
            next_flow_id: 1,
            next_pkt_id: 1,
            fct: FctStats::new(),
            memcached: vec![],
            probe_trains: vec![],
            collectives: vec![],
            collective_service: vec![],
            collective_done: vec![],
            pending_flows: vec![],
            tm_accum: TrafficMatrix::zeros(n as usize),
            rng,
            recall_outstanding: vec![vec![]; n as usize],
            policy: DispatchPolicy::OpticalOnly,
            pause_mode: PauseMode::None,
            counters: EngineCounters::default(),
            record_delays: false,
            watchdog_retransmit: true,
            delay_samples: vec![],
            telemetry,
            tele,
            services: vec![],
            class_sketches: [QuantileSketch::new(), QuantileSketch::new(), QuantileSketch::new()],
            timeseries: TimeSeries::new(SAMPLE_CAPACITY),
            frames: FrameLog::new(FRAME_CAPACITY),
            faults: None,
            obs,
            cfg,
        }
    }

    /// An independent copy of the whole engine — the warm-state leg of a
    /// checkpoint fork. The derived `Clone` copies all simulation state but
    /// shares telemetry/obs buffers through `Rc` handles; this method then
    /// deep-clones those buffers and re-binds every held instrument handle
    /// against the copy, so the fork and the original diverge without ever
    /// writing into each other's exports.
    pub fn fork(&self) -> Engine {
        let mut e = self.clone();
        e.telemetry = self.telemetry.deep_clone();
        e.tele = EngineTele {
            guardband_holds: e.telemetry.counter("engine.guardband_holds", Labels::None),
            trace: e.telemetry.trace(),
        };
        let reg = e.telemetry.clone();
        for tor in &mut e.tors {
            tor.attach_telemetry(&reg);
        }
        e.obs.spans = self.obs.spans.deep_clone();
        e.obs.profiler = self.obs.profiler.deep_clone();
        e
    }

    /// Whether lifecycle-span recording is active for this engine.
    pub fn has_span_recording(&self) -> bool {
        self.obs.spans.is_on()
    }

    /// A finalized, well-formed copy of the recorded span stream at sim
    /// time `now` (still-open spans get synthesized ends; parent ends are
    /// extended to cover late children). Empty when spans are off.
    pub fn span_events(&self, now: SimTime) -> Vec<SpanEvent> {
        self.obs.spans.finalized_events(now)
    }

    /// The engine-phase profiler handle (for reports and for the bench
    /// binary to install a wall clock into).
    pub fn profiler(&self) -> &Profiler {
        &self.obs.profiler
    }

    /// The metrics registry this engine reports into. Disabled when the
    /// configuration said `telemetry: false`.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Mirror engine-side plain counters into the registry so a snapshot
    /// sees them. Cheap relative to a snapshot; call before snapshotting.
    /// `queue_stats` carries the event-queue statistics, which live outside
    /// the engine (the sim crate does not depend on telemetry).
    pub fn sync_telemetry(&self, queue_stats: Option<openoptics_sim::QueueStats>) {
        let reg = &self.telemetry;
        if !reg.is_enabled() {
            return;
        }
        let c = &self.counters;
        for (name, v) in [
            ("engine.host_tx_packets", c.host_tx_packets),
            ("engine.delivered_packets", c.delivered_packets),
            ("engine.delivered_payload_bytes", c.delivered_payload_bytes),
            ("engine.fabric_drops", c.fabric_drops),
            ("engine.switch_drops", c.switch_drops),
            ("engine.no_route_drops", c.no_route_drops),
            ("engine.link_drops", c.link_drops),
            ("engine.pushback_deliveries", c.pushback_deliveries),
            ("engine.circuit_notifications", c.circuit_notifications),
            ("engine.trimmed_received", c.trimmed_received),
            ("engine.watchdog_retransmits", c.watchdog_retransmits),
            ("engine.rto_retransmits", c.rto_retransmits),
            ("engine.fast_retransmits", c.fast_retransmits),
            ("engine.nack_retransmits", c.nack_retransmits),
            ("engine.fault_drops", c.fault_drops),
        ] {
            reg.counter(name, Labels::None).set(v);
        }
        if let Some(qs) = queue_stats {
            reg.counter("sim.events_scheduled", Labels::None).set(qs.scheduled_total);
            reg.counter("sim.events_popped", Labels::None).set(qs.popped_total);
            reg.counter("sim.events_far_scheduled", Labels::None).set(qs.far_scheduled);
            reg.counter("sim.events_overlay_scheduled", Labels::None).set(qs.overlay_scheduled);
            reg.gauge("sim.queue_len", Labels::None).set(qs.len as i64);
            reg.gauge("sim.queue_peak_len", Labels::None).set(qs.peak_len as i64);
        }
        for (name, v) in self.fabric.counter_pairs() {
            reg.counter(name, Labels::None).set(v);
        }
        for t in &self.tors {
            let node = Labels::Node(t.cfg.id);
            let tc = t.counters;
            for (name, v) in [
                ("tor.enqueued", tc.enqueued),
                ("tor.delivered_local", tc.delivered_local),
                ("tor.deferred", tc.deferred),
                ("tor.defer_exhausted", tc.defer_exhausted),
                ("tor.trimmed", tc.trimmed),
                ("tor.dropped_congestion", tc.dropped_congestion),
                ("tor.dropped_capacity", tc.dropped_capacity),
                ("tor.dropped_rank", tc.dropped_rank),
                ("tor.tx_bytes", tc.tx_bytes),
                ("tor.tx_packets", tc.tx_packets),
            ] {
                reg.counter(name, node).set(v);
            }
            let (pb_events, pb_emitted) = t.pushback_stats();
            reg.counter("tor.pushback_events", node).set(pb_events);
            reg.counter("tor.pushback_emitted", node).set(pb_emitted);
            reg.counter("tor.rank_overflows", node).set(t.rank_overflows());
            reg.counter("tor.offloaded_packets", node).set(t.offload_book.offloaded_packets);
            reg.gauge("tor.buffer_bytes", node).set(t.buffer_bytes().min(i64::MAX as u64) as i64);
            reg.gauge("tor.peak_buffer_bytes", node)
                .set(t.peak_buffer_bytes.min(i64::MAX as u64) as i64);
        }
        let mut pauses = 0u64;
        let mut resumes = 0u64;
        let mut blocks = 0u64;
        let mut app_pushbacks = 0u64;
        let mut queued = 0u64;
        for h in &self.hosts {
            for v in [&h.vma, &h.vma_mice] {
                pauses += v.pause_events;
                resumes += v.resume_events;
                blocks += v.block_events;
                app_pushbacks += v.app_pushback_events;
                queued += v.total_queued();
            }
        }
        reg.counter("host.vma_pause_transitions", Labels::None).set(pauses);
        reg.counter("host.vma_resume_transitions", Labels::None).set(resumes);
        reg.counter("host.vma_block_extensions", Labels::None).set(blocks);
        reg.counter("host.vma_app_pushbacks", Labels::None).set(app_pushbacks);
        reg.gauge("host.vma_queued_bytes", Labels::None).set(queued.min(i64::MAX as u64) as i64);
        reg.gauge("fabric.sync_max_err_ns", Labels::None)
            .set(self.sync.max_err_ns().min(i64::MAX as u64) as i64);
        reg.counter("fct.completed_flows", Labels::None).set(self.fct.completed().len() as u64);
        if let Some(f) = &self.faults {
            let mut sums = FaultCounters::default();
            for c in &f.per_fault {
                sums.activations += c.activations;
                sums.dropped += c.dropped;
                sums.corrupted += c.corrupted;
                sums.missed_rotations += c.missed_rotations;
                sums.paused_tx += c.paused_tx;
                sums.reroutes += c.reroutes;
            }
            for (name, v) in [
                ("faults.activations", sums.activations),
                ("faults.dropped", sums.dropped),
                ("faults.corrupted", sums.corrupted),
                ("faults.missed_rotations", sums.missed_rotations),
                ("faults.paused_tx", sums.paused_tx),
                ("faults.reroutes", sums.reroutes),
            ] {
                reg.counter(name, Labels::None).set(v);
            }
        }
        self.obs.spans.mirror_into(reg);
        self.obs.profiler.mirror_into(reg);
    }

    // -- services, sampling, and the frame stream ---------------------------

    /// Declare a service: a named latency stream flows can be tagged with,
    /// with optional SLO accounting. Returns the service id used for
    /// tagging. Declaration order is the id order, so scenario-driven and
    /// programmatic declaration produce identical exports.
    pub fn declare_service(&mut self, name: &str, slo: Option<SloTarget>) -> u16 {
        self.services.push(ServiceStats::new(name.to_string(), slo));
        u16::try_from(self.services.len() - 1).expect("more than 65535 declared services")
    }

    /// Declared services, in declaration (= id) order.
    pub fn services(&self) -> &[ServiceStats] {
        &self.services
    }

    /// Per-flow-class FCT sketches, index-aligned with [`FLOW_CLASSES`].
    pub fn class_sketches(&self) -> &[QuantileSketch; 3] {
        &self.class_sketches
    }

    /// The sampled time series (empty unless `sample_every_ns > 0`).
    pub fn timeseries(&self) -> &TimeSeries {
        &self.timeseries
    }

    /// The subscription frame log.
    pub fn frames(&self) -> &FrameLog {
        &self.frames
    }

    /// Feed one completed flow into latency accounting: its class sketch
    /// always, and — when tagged — its service's sketch and SLO state. An
    /// SLO breach-state transition is traced and pushed as a frame.
    fn note_completion(&mut self, rec: FlowRecord, service: Option<u16>, now: SimTime) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let fct = rec.fct_ns();
        let class = if rec.bytes < MICE_MAX_BYTES {
            0
        } else if rec.bytes < ELEPHANT_MIN_BYTES {
            1
        } else {
            2
        };
        self.class_sketches[class].record(fct);
        let Some(sid) = service else { return };
        let fault_active = self.faults.as_ref().is_some_and(|f| f.active.iter().any(|&a| a));
        let Some(svc) = self.services.get_mut(sid as usize) else { return };
        let Some(transition) = svc.record(now.as_ns(), fct, fault_active) else { return };
        let (state, kind) = match transition {
            SloTransition::Breach => ("breach", TraceKind::SloBreach { service: u32::from(sid) }),
            SloTransition::Recover => {
                ("recover", TraceKind::SloRecover { service: u32::from(sid) })
            }
        };
        let line = format!(
            "{{\"frame\":\"slo\",\"t_ns\":{},\"service\":\"{}\",\"state\":\"{}\",\
             \"burn_milli\":{},\"bad\":{},\"total\":{}}}",
            now.as_ns(),
            svc.name(),
            state,
            svc.burn_milli(),
            svc.bad(),
            svc.total(),
        );
        self.frames.push(line);
        self.tele.trace.emit(now, kind);
    }

    /// One sampling tick: mirror counters, snapshot, and append the row to
    /// the time series and the frame log.
    pub(crate) fn take_sample(
        &mut self,
        now: SimTime,
        queue_stats: Option<openoptics_sim::QueueStats>,
    ) {
        self.sync_telemetry(queue_stats);
        let snap = self.telemetry.snapshot(now);
        let row = SampleRow {
            at_ns: now.as_ns(),
            counters: snap.counters,
            gauges: snap.gauges,
            services: self.services.iter().map(|s| s.summary()).collect(),
        };
        self.frames.push(row.to_json());
        self.timeseries.push(row);
    }

    /// Dump the flight recorder — the trace stream's ring of most recent
    /// records — into the frame stream, then trace the dump itself. Called
    /// on fault activation and when a strict-invariants check is about to
    /// trip; no-op when tracing is off.
    fn flight_dump(&mut self, now: SimTime, trigger: FlightTrigger) {
        if !self.tele.trace.is_on() {
            return;
        }
        let recent = self.tele.trace.recent_records();
        let mut line = String::with_capacity(64 + recent.len() * 72);
        use std::fmt::Write as _;
        let _ = write!(
            line,
            "{{\"frame\":\"flight\",\"t_ns\":{},\"trigger\":\"{}\",\"records\":[",
            now.as_ns(),
            trigger.as_str(),
        );
        for (i, rec) in recent.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&rec.to_json());
        }
        line.push_str("]}");
        self.frames.push(line);
        self.tele
            .trace
            .emit(now, TraceKind::FlightDump { trigger, records: idx_u32(recent.len()) });
    }

    // -- fault injection -----------------------------------------------------

    /// Install (or extend) the fault campaign. The plan is validated
    /// against this engine's shape (`node_num`, `uplink`) and against
    /// `not_before` — window starts must not lie in the simulated past.
    /// Returns the campaign indices the new windows occupy so the caller
    /// can schedule their edges as events.
    pub fn set_fault_plan(
        &mut self,
        plan: &FaultPlan,
        not_before: SimTime,
    ) -> Result<std::ops::Range<usize>, FaultError> {
        plan.validate_against(self.cfg.node_num, u32::from(self.cfg.uplink), not_before)?;
        let f = self.faults.get_or_insert_with(FaultRuntime::default);
        let lo = f.specs.len();
        f.specs.extend_from_slice(plan.faults());
        f.active.resize(f.specs.len(), false);
        f.rotation_lag.resize(f.specs.len(), 0);
        f.per_fault.resize(f.specs.len(), FaultCounters::default());
        Ok(lo..f.specs.len())
    }

    /// The fault window at campaign index `idx`, if one is installed.
    pub fn fault_spec(&self, idx: usize) -> Option<FaultSpec> {
        self.faults.as_ref().and_then(|f| f.specs.get(idx).copied())
    }

    /// Results of the injected fault campaign. Campaign-wide totals come
    /// from the engine counters; the per-fault breakdown is empty when no
    /// plan was installed.
    pub fn fault_report(&self) -> FaultReport {
        let mut r = FaultReport {
            delivered: self.counters.delivered_packets,
            retransmitted: self.counters.rto_retransmits
                + self.counters.watchdog_retransmits
                + self.counters.fast_retransmits
                + self.counters.nack_retransmits,
            ..FaultReport::default()
        };
        if let Some(f) = &self.faults {
            r.per_fault = f.per_fault.clone();
            for c in &f.per_fault {
                r.dropped += c.dropped;
                r.corrupted += c.corrupted;
                r.rerouted += c.reroutes;
                r.missed_rotations += c.missed_rotations;
                r.paused_tx += c.paused_tx;
            }
        }
        r
    }

    /// Rebuild every fault mask from the campaign's active flags, including
    /// the link-down-masked schedule routing compiles against. Called on
    /// every window edge; for a key claimed by overlapping windows, the
    /// first active fault in campaign order owns it.
    fn rebuild_fault_masks(&mut self) {
        let Some(f) = &mut self.faults else { return };
        f.drop_mask.clear();
        f.flap_mask.clear();
        f.slice_mask.clear();
        f.pause_mask.clear();
        let mut down: Vec<(NodeId, PortId)> = vec![];
        for (i, s) in f.specs.iter().enumerate() {
            if !f.active[i] {
                continue;
            }
            match s.kind {
                FaultKind::LinkDown => {
                    f.drop_mask.entry((s.node, s.port)).or_insert(i);
                    down.push((s.node, s.port));
                }
                FaultKind::OcsPortStuck => {
                    f.drop_mask.entry((s.node, s.port)).or_insert(i);
                }
                FaultKind::TransceiverFlap { .. } => {
                    f.flap_mask.entry((s.node, s.port)).or_insert(i);
                }
                FaultKind::SliceCorruption => {
                    f.slice_mask.entry(s.node).or_insert(i);
                }
                FaultKind::NicPauseStorm => {
                    f.pause_mask.entry(s.node).or_insert(i);
                }
            }
        }
        f.masked = if down.is_empty() {
            None
        } else {
            let sched = self.fabric.schedule();
            let kept: Vec<Circuit> = sched
                .circuits()
                .iter()
                .filter(|c| !down.iter().any(|&(n, p)| c.peer_of(n, p).is_some()))
                .copied()
                .collect();
            // A subset of a valid circuit list stays valid (validation is
            // per-circuit ranges plus pairwise conflicts); if the rebuild
            // fails anyway, fall back to the unmasked schedule — the drop
            // mask alone still degrades gracefully.
            OpticalSchedule::build(sched.slice_config(), sched.num_nodes(), sched.uplinks(), &kept)
                .ok()
        };
    }

    /// One fault window edge: activate or clear campaign fault `idx`.
    fn on_fault_transition(
        &mut self,
        idx: usize,
        up: bool,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) {
        let Some(f) = &mut self.faults else { return };
        let Some(spec) = f.specs.get(idx).copied() else { return };
        if f.active[idx] == up {
            return;
        }
        f.active[idx] = up;
        if up {
            f.per_fault[idx].activations += 1;
        }
        let lag = if !up && spec.kind == FaultKind::SliceCorruption {
            std::mem::take(&mut f.rotation_lag[idx])
        } else {
            0
        };
        self.rebuild_fault_masks();
        if spec.kind == FaultKind::LinkDown {
            // Link-down edges are visible to the controller: stale route
            // tables are dropped so the next lookup recompiles against the
            // masked time-expanded graph (bounded by the router's hop
            // horizon — the reroute cannot wander).
            for t in &mut self.tors {
                t.tft_mut().clear();
            }
            if let Some(f) = &mut self.faults {
                f.per_fault[idx].reroutes += 1;
            }
        }
        // A recovering slice-corrupted switch replays its missed rotations
        // to resynchronize its calendar with the fabric.
        for _ in 0..lag {
            self.tors[spec.node.index()].rotate(now);
        }
        if !up {
            // A cleared fault can unblock traffic already queued at the node.
            self.kick_all_ports(spec.node, now, q);
        }
        let kind = if up {
            TraceKind::FaultInject { node: spec.node, port: spec.port }
        } else {
            TraceKind::FaultClear { node: spec.node, port: spec.port }
        };
        self.tele.trace.emit(now, kind);
        if up {
            // A fault firing is exactly the moment a subscriber wants the
            // recent trace tail: dump the flight recorder (which now ends
            // with the FaultInject record just emitted).
            self.flight_dump(now, FlightTrigger::FaultEdge);
        }
        self.obs.profiler.mark(Phase::FaultRuntime);
    }

    /// Whether a fault destroys the packet about to leave `(node, port)`:
    /// `Some((fault, corrupted))` — drop-masked ports always lose it,
    /// flapping transceivers lose it with the configured probability (drawn
    /// from the engine's seeded RNG, so runs replay identically).
    fn fault_tx_check(&mut self, node: NodeId, port: PortId) -> Option<(usize, bool)> {
        let f = self.faults.as_ref()?;
        if let Some(&i) = f.drop_mask.get(&(node, port)) {
            return Some((i, false));
        }
        let &i = f.flap_mask.get(&(node, port))?;
        let pct = match f.specs[i].kind {
            FaultKind::TransceiverFlap { corrupt_pct } => u32::from(corrupt_pct),
            _ => 0,
        };
        if self.rng.range(0..100u32) < pct {
            Some((i, true))
        } else {
            None
        }
    }

    /// Set the routing scheme (`deploy_routing`). `ta` selects
    /// wildcard-slice (topology-instance) routing.
    pub fn set_router(
        &mut self,
        algo: Box<dyn RoutingAlgorithm>,
        lookup: LookupMode,
        multipath: MultipathMode,
        ta: bool,
    ) {
        self.router = Some(RouterSpec { algo, lookup, multipath, ta });
        // Route tables derived from the old schedule/algorithm are stale.
        for t in &mut self.tors {
            t.tft_mut().clear();
        }
    }

    /// Move the routing scheme out of `from` into this engine, updating its
    /// TA flag for this engine's schedule. Used when `deploy_topo` replaces
    /// an unprimed engine wholesale: the routing deployed on the old engine
    /// survives the swap (route tables start empty in a fresh engine, so
    /// there is nothing stale to clear).
    pub(crate) fn adopt_router(&mut self, from: &mut Engine, ta: bool) {
        self.router = from.router.take();
        if let Some(spec) = &mut self.router {
            spec.ta = ta;
        }
    }

    /// Re-derive the router's TA flag after a schedule change (a
    /// reconfiguration can move between a held instance and a rotating
    /// schedule, e.g. SORN growing extra slices).
    pub(crate) fn refresh_router_ta(&mut self, ta: bool) {
        if let Some(spec) = &mut self.router {
            spec.ta = ta;
        }
    }

    /// Whether a routing scheme is installed.
    pub fn has_router(&self) -> bool {
        self.router.is_some()
    }

    /// Replace the optical schedule (TA reconfiguration). Honors the OCS
    /// reconfiguration delay; routing tables are cleared so new paths are
    /// computed against the new topology.
    pub fn reconfigure_schedule(&mut self, schedule: OpticalSchedule, now: SimTime) -> SimTime {
        let done = self.fabric.reconfigure(schedule, now);
        self.fabric.set_dead_window_ns(self.cfg.fabric_dead_ns.min(self.slice_cfg.slice_ns / 2));
        for t in &mut self.tors {
            t.tft_mut().clear();
        }
        // Link-down masks derived from the old schedule are stale; rebuild
        // (they refresh again at the next fault window edge).
        self.rebuild_fault_masks();
        done
    }

    /// The active optical schedule.
    pub fn schedule(&self) -> &OpticalSchedule {
        self.fabric.schedule()
    }

    /// Direct access to a switch (telemetry).
    pub fn tor(&self, node: NodeId) -> &ToRSwitch {
        &self.tors[node.index()]
    }

    /// Mutable switch access (used by the `add()` API).
    pub fn tor_mut(&mut self, node: NodeId) -> &mut ToRSwitch {
        &mut self.tors[node.index()]
    }

    /// Fabric loss counters.
    pub fn fabric_stats(&self) -> (u64, u64) {
        (self.fabric.delivered, self.fabric.total_lost())
    }

    /// The ToR a host hangs off.
    pub fn host_tor(&self, host: HostId) -> NodeId {
        self.hosts[host.index()].tor
    }

    /// Per-port transmitted bytes (`bw_usage`).
    pub fn port_tx_bytes(&self, node: NodeId, port: PortId) -> u64 {
        self.tx_bytes_per_port[node.index()][port.index()]
    }

    /// Aggregate the hosts' per-destination vma queue depths into a demand
    /// matrix — the c-Through-style collection mode where "hosts
    /// periodically report traffic volume per destination switch" (§5.2).
    /// Rows are the reporting hosts' ToRs.
    pub fn host_pending_demand(&self) -> TrafficMatrix {
        let mut tm = TrafficMatrix::zeros(self.cfg.node_num as usize);
        for h in &self.hosts {
            for (dst, bytes) in h.vma.queue_snapshot() {
                tm.add(h.tor, dst, bytes as f64);
            }
        }
        tm
    }

    /// Drain and return the accumulated traffic matrix (`collect`).
    pub fn take_traffic_matrix(&mut self) -> TrafficMatrix {
        std::mem::replace(&mut self.tm_accum, TrafficMatrix::zeros(self.cfg.node_num as usize))
    }

    /// Bytes delivered so far for a flow.
    pub fn flow_delivered(&self, flow: FlowId) -> u64 {
        self.flows
            .get(&flow)
            .map(|f| match &f.transport {
                Transport::Tcp { receiver, .. } | Transport::TdTcp { receiver, .. } => {
                    receiver.delivered_bytes
                }
                Transport::Paced => f.delivered,
            })
            .unwrap_or(0)
    }

    /// Reordering events observed by a TCP flow's receiver (Fig. 9b).
    pub fn flow_reorder_events(&self, flow: FlowId) -> u64 {
        self.flows
            .get(&flow)
            .map(|f| match &f.transport {
                Transport::Tcp { receiver, .. } | Transport::TdTcp { receiver, .. } => {
                    receiver.reorder_events
                }
                Transport::Paced => 0,
            })
            .unwrap_or(0)
    }

    /// TCP sender diagnostics `(fast retransmits, timeouts)`.
    pub fn flow_tcp_stats(&self, flow: FlowId) -> (u64, u64) {
        self.flows
            .get(&flow)
            .map(|f| match &f.transport {
                Transport::Tcp { sender, .. } => (sender.fast_retransmits, sender.timeouts),
                Transport::TdTcp { sender, .. } => (sender.fast_retransmits, sender.timeouts),
                Transport::Paced => (0, 0),
            })
            .unwrap_or((0, 0))
    }

    /// Probe-train statistics.
    pub fn probe_stats(&self, train: usize) -> &ProbeStats {
        &self.probe_trains[train].stats
    }

    // -- workload attachment (before `prime`) ------------------------------

    /// Schedule a flow to start at `at`; returns its pending-flow index
    /// (used by the API layer to arm the start timer after priming).
    pub fn add_flow(
        &mut self,
        at: SimTime,
        src: HostId,
        dst: HostId,
        bytes: u64,
        transport: TransportKind,
    ) -> usize {
        self.add_flow_tagged(at, src, dst, bytes, transport, None)
    }

    /// [`Engine::add_flow`] with a service tag for SLO accounting.
    #[allow(clippy::too_many_arguments)]
    pub fn add_flow_tagged(
        &mut self,
        at: SimTime,
        src: HostId,
        dst: HostId,
        bytes: u64,
        transport: TransportKind,
        service: Option<u16>,
    ) -> usize {
        self.pending_flows.push(PendingFlow { at, src, dst, bytes, transport, service });
        self.pending_flows.len() - 1
    }

    /// Attach a memcached app: `clients` SET to `server` until `stop_at`.
    pub fn add_memcached(
        &mut self,
        params: MemcachedParams,
        server: HostId,
        clients: Vec<HostId>,
        stop_at: SimTime,
    ) -> usize {
        self.add_memcached_tagged(params, server, clients, stop_at, None)
    }

    /// [`Engine::add_memcached`] with a service tag: each operation's
    /// request→response latency reports under the service's SLO.
    pub fn add_memcached_tagged(
        &mut self,
        params: MemcachedParams,
        server: HostId,
        clients: Vec<HostId>,
        stop_at: SimTime,
        service: Option<u16>,
    ) -> usize {
        self.memcached.push(MemcachedApp { params, server, clients, stop_at, service });
        self.memcached.len() - 1
    }

    /// Attach a ring allreduce over `hosts` of `data_bytes`.
    pub fn add_allreduce(&mut self, hosts: Vec<HostId>, data_bytes: u64) -> usize {
        self.add_allreduce_tagged(hosts, data_bytes, None)
    }

    /// [`Engine::add_allreduce`] with a service tag: every chunk flow's FCT
    /// reports under the service's SLO.
    pub fn add_allreduce_tagged(
        &mut self,
        hosts: Vec<HostId>,
        data_bytes: u64,
        service: Option<u16>,
    ) -> usize {
        self.collectives.push(RingAllreduce::new(hosts, data_bytes));
        self.collective_service.push(service);
        self.collective_done.push(None);
        self.collectives.len() - 1
    }

    /// Attach a probe train: `count` probes of `payload` bytes from `src`
    /// to `dst` every `interval_ns`.
    pub fn add_probe_train(
        &mut self,
        src: HostId,
        dst: HostId,
        interval_ns: u64,
        count: u64,
        payload: u32,
    ) -> usize {
        self.probe_trains.push(ProbeTrain {
            src,
            dst,
            interval_ns,
            remaining: count,
            payload,
            stats: ProbeStats::new(),
        });
        self.probe_trains.len() - 1
    }

    /// Conservative lookahead window (ns) for epoch-stepped execution: the
    /// fabric's minimum cross-node delay plus the serialization floor of
    /// the smallest frame (64 B) on an optical uplink. Any two nodes'
    /// interactions carry at least this much simulated delay, so execution
    /// chunked into windows of this size is equivalent to (and, sharded,
    /// safely parallelizable against) the serial event loop.
    pub fn conservative_lookahead_ns(&self) -> u64 {
        self.fabric.conservative_lookahead_ns(self.cfg.uplink_bandwidth().tx_time_ns(64))
    }

    /// Install the initial events: rotations, scheduled flows, app timers.
    /// Call once before running.
    pub fn prime(&mut self, q: &mut EventQueue<Event>) {
        // Per-node rotations (only for rotating schedules).
        if self.slice_cfg.num_slices > 1 {
            for node in 0..self.cfg.node_num {
                let fire = self
                    .sync
                    .global_fire_time(node as usize, SimTime::from_ns(self.slice_cfg.slice_ns));
                q.schedule(fire, Event::Rotate(NodeId(node)));
            }
        }
        // Initial pause state (slice 0 is "notified" at t=0).
        if self.pause_mode == PauseMode::DirectCircuit {
            for node in 0..self.cfg.node_num {
                self.refresh_pause_state(NodeId(node), 0, SimTime::ZERO);
                if self.slice_cfg.num_slices > 1 {
                    let lead = 200;
                    q.schedule(
                        SimTime::from_ns(self.slice_cfg.slice_ns - lead),
                        Event::Timer(Timer::NotifyHosts(NodeId(node))),
                    );
                }
            }
        }
        // Scheduled flows.
        for i in 0..self.pending_flows.len() {
            q.schedule(self.pending_flows[i].at, Event::Timer(Timer::FlowStart(i)));
        }
        // Memcached ops.
        for (a, app) in self.memcached.iter().enumerate() {
            for c in 0..app.clients.len() {
                let gap = app.params.next_gap_ns(&mut self.rng);
                q.schedule(
                    SimTime::from_ns(gap),
                    Event::Timer(Timer::MemcachedOp { app: a, client_idx: c }),
                );
            }
        }
        // Allreduce first steps.
        for c in 0..self.collectives.len() {
            let sends = self.collectives[c].start();
            let service = self.collective_service[c];
            for s in sends {
                self.start_flow(
                    SimTime::ZERO,
                    s.from,
                    s.to,
                    s.bytes,
                    TransportKind::Paced,
                    FlowKind::Chunk { collective: c },
                    service,
                    q,
                );
            }
        }
        // Probe trains.
        for t in 0..self.probe_trains.len() {
            q.schedule(SimTime::from_ns(1), Event::Timer(Timer::ProbeSend(t)));
        }
        // Fault windows: each edge is an ordinary (time, seq) event, so
        // campaigns replay byte-identically at any worker count.
        if let Some(f) = &self.faults {
            for (i, s) in f.specs.iter().enumerate() {
                q.schedule(s.start, Event::Timer(Timer::FaultStart(i)));
                q.schedule(s.end, Event::Timer(Timer::FaultEnd(i)));
            }
        }
        // Telemetry sampling cadence: the timer is simply never scheduled
        // when sampling is off, so a disabled run pays nothing.
        if self.cfg.sample_every_ns > 0 && self.telemetry.is_enabled() {
            q.schedule(SimTime::from_ns(self.cfg.sample_every_ns), Event::Timer(Timer::Sample));
        }
    }

    // -- flows --------------------------------------------------------------

    /// Start a flow now; returns its id. `service` tags the flow's
    /// completion latency for SLO accounting.
    #[allow(clippy::too_many_arguments)]
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: HostId,
        dst: HostId,
        bytes: u64,
        transport: TransportKind,
        kind: FlowKind,
        service: Option<u16>,
        q: &mut EventQueue<Event>,
    ) -> FlowId {
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        let transport = match transport {
            TransportKind::Paced => Transport::Paced,
            TransportKind::Tcp(cfg) => Transport::Tcp {
                sender: TcpSender::new(cfg, Some(bytes), now),
                receiver: TcpReceiver::new(),
            },
            TransportKind::TdTcp(cfg) => Transport::TdTcp {
                // Two topologies: the optical fabric and the electrical one.
                sender: TdTcpSender::new(cfg, 2, Some(bytes), now),
                receiver: TcpReceiver::new(),
            },
        };
        let fs = FlowState {
            src_host: src,
            dst_host: dst,
            bytes,
            queued: 0,
            delivered: 0,
            delivered_at_last_watchdog: 0,
            transport,
            kind,
            service,
            done: false,
        };
        match fs.kind {
            FlowKind::Response { .. } => {}
            _ => self.fct.start(id, bytes, now),
        }
        self.flows.insert(id, fs);
        self.obs.flow_begin(id, now);
        match &self.flows[&id].transport {
            Transport::Paced => {
                self.hosts[src.index()].backlog.push(id);
                q.schedule_after(now, WATCHDOG_NS, Event::Timer(Timer::FlowWatchdog(id)));
            }
            Transport::Tcp { sender, .. } => {
                let deadline = sender.rto_deadline();
                q.schedule(deadline, Event::Timer(Timer::TcpRto(id)));
            }
            Transport::TdTcp { sender, .. } => {
                let deadline = sender.rto_deadline();
                q.schedule(deadline, Event::Timer(Timer::TcpRto(id)));
            }
        }
        if matches!(self.flows[&id].transport, Transport::Tcp { .. } | Transport::TdTcp { .. }) {
            self.pump_tcp(id, now);
        }
        self.pump_host(src, now, q);
        id
    }

    /// Queue paced-flow segments into the vma stack, respecting socket
    /// capacity (application push-back).
    fn pump_backlog(&mut self, host: HostId, now: SimTime) {
        // Take the backlog to iterate without aliasing `self`; flows that
        // remain unfinished are collected into `still`, which becomes the
        // new backlog (reusing the taken allocation's slot keeps this a
        // zero-copy swap rather than a per-call clone).
        let backlog = std::mem::take(&mut self.hosts[host.index()].backlog);
        let mut still = vec![];
        for &fid in &backlog {
            let Some(f) = self.flows.get_mut(&fid) else { continue };
            if f.done {
                continue;
            }
            let dst_tor = self.hosts[f.dst_host.index()].tor;
            let split_mice = self.policy == DispatchPolicy::MiceElectrical;
            let elephant_threshold = self.cfg.elephant_threshold;
            let h = &mut self.hosts[host.index()];
            while f.queued < f.bytes {
                let len = to_u32((f.bytes - f.queued).min(MSS as u64));
                // Elephant classification: the simulator knows flow sizes,
                // so it classifies by size directly — the steady state that
                // PIAS-style aging converges to on persistent connections
                // (the aging tracker still records for telemetry).
                let use_mice = split_mice && f.bytes < elephant_threshold;
                let stack = if use_mice { &mut h.vma_mice } else { &mut h.vma };
                if !stack.would_accept(dst_tor, len) {
                    break;
                }
                stack
                    .send(
                        dst_tor,
                        Segment {
                            flow: fid,
                            dst_host: f.dst_host,
                            bytes: len,
                            seq: f.queued,
                            queued_at: now,
                        },
                    )
                    .ok();
                f.queued += len as u64;
                h.aging.record(fid, len as u64);
            }
            if f.queued < f.bytes {
                still.push(fid);
            }
        }
        self.hosts[host.index()].backlog = still;
    }

    /// The TDTCP topology id a host currently sends to `dst_tor` through:
    /// 0 = optical (direct circuit up), 1 = electrical.
    fn topology_id(&self, src_tor: NodeId, dst_tor: NodeId) -> usize {
        let slice = self.tors[src_tor.index()].current_slice();
        if self.fabric.schedule().port_to(src_tor, dst_tor, slice).is_some() {
            0
        } else {
            1
        }
    }

    /// Pump TCP/TDTCP segments into vma as the window allows.
    fn pump_tcp(&mut self, fid: FlowId, now: SimTime) {
        let Some(f) = self.flows.get(&fid) else { return };
        let (src, dst_host) = (f.src_host, f.dst_host);
        let src_tor = self.hosts[src.index()].tor;
        let dst_tor = self.hosts[dst_host.index()].tor;
        let topo = self.topology_id(src_tor, dst_tor);
        let Some(f) = self.flows.get_mut(&fid) else { return };
        match &mut f.transport {
            Transport::Tcp { sender, .. } => loop {
                // Respect socket capacity before consuming sender state.
                if !self.hosts[src.index()].vma.would_accept(dst_tor, MSS) {
                    break;
                }
                let Some((seq, len)) = sender.next_segment(now) else { break };
                self.hosts[src.index()]
                    .vma
                    .send(dst_tor, Segment { flow: fid, dst_host, bytes: len, seq, queued_at: now })
                    .ok();
                self.hosts[src.index()].aging.record(fid, len as u64);
            },
            Transport::TdTcp { sender, .. } => {
                sender.set_topology(topo, now);
                loop {
                    if !self.hosts[src.index()].vma.would_accept(dst_tor, MSS) {
                        break;
                    }
                    let Some((seq, len)) = sender.next_segment(now) else { break };
                    self.hosts[src.index()]
                        .vma
                        .send(
                            dst_tor,
                            Segment { flow: fid, dst_host, bytes: len, seq, queued_at: now },
                        )
                        .ok();
                    self.hosts[src.index()].aging.record(fid, len as u64);
                }
            }
            Transport::Paced => {}
        }
    }

    /// Make sure a HostTx event is pending for `host`.
    fn pump_host(&mut self, host: HostId, now: SimTime, q: &mut EventQueue<Event>) {
        let h = &mut self.hosts[host.index()];
        if h.tx_scheduled {
            return;
        }
        h.tx_scheduled = true;
        let at = h.nic_free.max(now);
        q.schedule(at, Event::HostTx(host));
    }

    fn finish_flow(&mut self, fid: FlowId, now: SimTime, q: &mut EventQueue<Event>) {
        let Some(f) = self.flows.get_mut(&fid) else { return };
        if f.done {
            return;
        }
        f.done = true;
        let kind = f.kind;
        let service = f.service;
        let (src, dst) = (f.src_host, f.dst_host);
        self.obs.flow_end(fid, now);
        match kind {
            FlowKind::Plain => {
                if let Some(rec) = self.fct.complete(fid, now) {
                    self.note_completion(rec, service, now);
                }
            }
            FlowKind::Chunk { collective } => {
                if let Some(rec) = self.fct.complete(fid, now) {
                    self.note_completion(rec, service, now);
                }
                if let Some(next) = self.collectives[collective].on_chunk_complete() {
                    for s in next {
                        self.start_flow(
                            now,
                            s.from,
                            s.to,
                            s.bytes,
                            TransportKind::Paced,
                            FlowKind::Chunk { collective },
                            service,
                            q,
                        );
                    }
                } else if self.collectives[collective].is_done() {
                    self.collective_done[collective] = Some(now);
                }
            }
            FlowKind::Request { response_bytes } => {
                // Server answers; the request's FCT completes with the
                // response (handled below). The response inherits the
                // request's service tag so the full round trip reports
                // under one SLO.
                self.start_flow(
                    now,
                    dst,
                    src,
                    response_bytes as u64,
                    TransportKind::Paced,
                    FlowKind::Response { of: fid },
                    service,
                    q,
                );
            }
            FlowKind::Response { of } => {
                if let Some(rec) = self.fct.complete(of, now) {
                    self.note_completion(rec, service, now);
                }
            }
        }
    }

    // -- dispatch -----------------------------------------------------------

    fn alloc_pkt_id(&mut self) -> u64 {
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        id
    }

    fn elec_enabled(&self) -> bool {
        self.elec_bw.is_some()
    }

    /// Decide which fabric carries this packet.
    fn pick_electrical(&mut self, host: HostId, pkt: &Packet) -> bool {
        if !self.elec_enabled() {
            return false;
        }
        match self.policy {
            DispatchPolicy::OpticalOnly => false,
            DispatchPolicy::ElectricalOnly => true,
            DispatchPolicy::MiceElectrical => {
                // Elephants optical; mice and control/ack traffic electrical.
                !(pkt.is_data() && self.hosts[host.index()].aging.is_elephant(pkt.flow))
            }
            DispatchPolicy::HybridDirect => {
                let tor = self.hosts[host.index()].tor;
                let slice = self.tors[tor.index()].current_slice();
                self.fabric.schedule().port_to(tor, pkt.dst, slice).is_none()
            }
        }
    }

    /// Send a packet from a host into the network (NIC time already spent).
    fn dispatch_from_host(
        &mut self,
        host: HostId,
        pkt: Packet,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) {
        let src_tor = self.hosts[host.index()].tor;
        if pkt.is_data() {
            self.tm_accum.add(src_tor, pkt.dst, pkt.size as f64);
            self.counters.host_tx_packets += 1;
        }
        if self.pick_electrical(host, &pkt) {
            self.dispatch_electrical(host, pkt, now, q);
        } else {
            self.obs.open(pkt.id, Stage::Propagation, now);
            q.schedule_after(now, HOST_WIRE_NS, Event::TorIngress(src_tor, pkt));
        }
    }

    /// Send a packet over the electrical fabric (accounting done by caller
    /// or by [`Self::dispatch_from_host`]).
    fn dispatch_electrical(
        &mut self,
        host: HostId,
        pkt: Packet,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) {
        let src_tor = self.hosts[host.index()].tor;
        let size = pkt.size;
        let pid = pkt.id;
        if self.elec[src_tor.index()].queue.push(size, pkt).is_err() {
            self.counters.link_drops += 1;
            self.obs.dropped(pid, now, 4);
            return;
        }
        self.obs.open(pid, Stage::CalendarWait, now);
        let link = &mut self.elec[src_tor.index()];
        if !link.draining {
            link.draining = true;
            let at = link.busy_until.max(now);
            q.schedule(at, Event::ElecFree(src_tor));
        }
    }

    /// Deliver a packet to a host's downlink queue at its ToR.
    #[allow(clippy::wrong_self_convention)] // "to" = toward the downlink, not a conversion
    fn to_downlink(&mut self, host: HostId, pkt: Packet, now: SimTime, q: &mut EventQueue<Event>) {
        let size = pkt.size;
        let pid = pkt.id;
        if self.downlinks[host.index()].queue.push(size, pkt).is_err() {
            self.counters.link_drops += 1;
            self.obs.dropped(pid, now, 4);
            return;
        }
        self.obs.open(pid, Stage::Rx, now);
        let link = &mut self.downlinks[host.index()];
        if !link.draining {
            link.draining = true;
            let at = link.busy_until.max(now);
            q.schedule(at, Event::DownlinkFree(host));
        }
    }

    // -- routing ------------------------------------------------------------

    /// Compute and install routes for `(node, dst)` at the node's current
    /// slice. Returns whether any path was produced.
    fn install_routes_for(&mut self, node: NodeId, dst: NodeId) -> bool {
        let Some(spec) = &self.router else { return false };
        let arr = if spec.ta { None } else { Some(self.tors[node.index()].current_slice()) };
        // While a link-down fault is active, paths compile against the
        // masked time-expanded graph so the reroute avoids the failed link.
        let sched = match self.faults.as_ref().and_then(|f| f.masked.as_ref()) {
            Some(masked) => masked,
            None => self.fabric.schedule(),
        };
        let paths: Vec<Path> = spec.algo.paths(sched, node, dst, arr);
        if paths.is_empty() {
            return false;
        }
        let entries = compile(&paths, spec.lookup, spec.multipath);
        for e in entries {
            let n = e.node;
            self.tors[n.index()].install_routes([e]);
        }
        true
    }

    /// Kick an optical port if it is idle.
    fn kick_port(&mut self, node: NodeId, port: PortId, now: SimTime, q: &mut EventQueue<Event>) {
        if self.port_pending[node.index()][port.index()] {
            return;
        }
        self.port_pending[node.index()][port.index()] = true;
        q.schedule(now, Event::PortFree(node, port));
    }

    fn kick_all_ports(&mut self, node: NodeId, now: SimTime, q: &mut EventQueue<Event>) {
        for p in 0..self.cfg.uplink {
            if self.tors[node.index()].has_active_traffic(PortId(p)) {
                self.kick_port(node, PortId(p), now, q);
            }
        }
    }

    /// Update vma pause state of a ToR's hosts for the active slice
    /// (DirectCircuit pause mode — the flow-pausing service fed by circuit
    /// notifications).
    fn refresh_pause_state(&mut self, node: NodeId, slice: u32, now: SimTime) {
        let hosts: Vec<HostId> = (0..self.cfg.total_hosts())
            .map(HostId)
            .filter(|h| self.hosts[h.index()].tor == node)
            .collect();
        let dsts: Vec<NodeId> = (0..self.cfg.node_num).map(NodeId).collect();
        let tracing = self.tele.trace.is_on();
        for h in hosts {
            for &d in &dsts {
                if d == node {
                    continue;
                }
                let open = self.fabric.schedule().port_to(node, d, slice).is_some();
                let transition = if open {
                    self.hosts[h.index()].vma.resume(d)
                } else {
                    self.hosts[h.index()].vma.pause(d)
                };
                if tracing && transition {
                    let kind = if open {
                        TraceKind::FlowResume { host: h, dst: d }
                    } else {
                        TraceKind::FlowPause { host: h, dst: d }
                    };
                    self.tele.trace.emit(now, kind);
                }
            }
        }
    }

    // -- event handlers -------------------------------------------------------

    fn on_host_tx(&mut self, host: HostId, now: SimTime, q: &mut EventQueue<Event>) {
        self.hosts[host.index()].tx_scheduled = false;
        let tor = self.hosts[host.index()].tor;
        if let Some(&i) = self.faults.as_ref().and_then(|f| f.pause_mask.get(&tor)) {
            // NIC pause storm: data transmission defers to the window end.
            // (ACKs bypass the NIC data queue in this model and still flow.)
            let resume = self.faults.as_ref().map_or(now, |f| f.specs[i].end);
            if let Some(f) = &mut self.faults {
                f.per_fault[i].paused_tx += 1;
            }
            self.hosts[host.index()].tx_scheduled = true;
            q.schedule(resume.max(now + 1), Event::HostTx(host));
            return;
        }
        if now < self.hosts[host.index()].nic_free {
            self.pump_host(host, self.hosts[host.index()].nic_free, q);
            return;
        }
        self.pump_backlog(host, now);
        let (popped, force_electrical) = match self.hosts[host.index()].vma_mice.pop_next(now) {
            Some(x) => (Some(x), true),
            None => (self.hosts[host.index()].vma.pop_next(now), false),
        };
        match popped {
            Some((dst_tor, seg)) => {
                let src_tor = self.hosts[host.index()].tor;
                let mut pkt = Packet::data(
                    0,
                    seg.flow,
                    src_tor,
                    dst_tor,
                    host,
                    seg.dst_host,
                    seg.bytes,
                    seg.seq,
                    now,
                );
                pkt.id = self.alloc_pkt_id();
                self.obs.packet_begin(seg.flow, pkt.id, seg.queued_at, now);
                let tx = self.cfg.host_link_bandwidth().tx_time_ns(pkt.size as u64).max(1);
                self.hosts[host.index()].nic_free = now + tx;
                if force_electrical {
                    // Mice-stack traffic bypasses policy but is still
                    // accounted like any other host transmission.
                    self.tm_accum.add(src_tor, pkt.dst, pkt.size as f64);
                    self.counters.host_tx_packets += 1;
                    self.dispatch_electrical(host, pkt, now, q);
                } else {
                    self.dispatch_from_host(host, pkt, now, q);
                }
                // Keep draining.
                self.pump_host(host, now + tx, q);
            }
            None => {
                // Nothing sendable: wake at the next push-back expiry if any.
                let t = self.hosts[host.index()]
                    .vma
                    .next_unblock(now)
                    .into_iter()
                    .chain(self.hosts[host.index()].vma_mice.next_unblock(now))
                    .min();
                if let Some(t) = t {
                    let h = &mut self.hosts[host.index()];
                    h.tx_scheduled = true;
                    q.schedule(t, Event::HostTx(host));
                }
            }
        }
    }

    fn on_tor_ingress(
        &mut self,
        node: NodeId,
        pkt: Packet,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) {
        let src_tor_of_pkt = pkt.src;
        let dst = pkt.dst;
        let pid = pkt.id;
        let res = self.tors[node.index()].ingress(pkt, now);
        if let Some(msg) = res.pushback {
            // Broadcast to the sender ToR's hosts after a control RTT.
            let hosts: Vec<HostId> = (0..self.cfg.total_hosts())
                .map(HostId)
                .filter(|h| self.hosts[h.index()].tor == src_tor_of_pkt)
                .collect();
            for h in hosts {
                q.schedule_after(now, 2_000, Event::HostControl(h, msg.clone()));
            }
        }
        match res.decision {
            IngressDecision::DeliverLocal(p) => {
                let host = p.dst_host;
                if host.0 == u32::MAX {
                    return; // control packet addressed to the switch itself
                }
                self.to_downlink(host, p, now, q);
            }
            IngressDecision::Enqueued { port, .. } | IngressDecision::Trimmed { port, .. } => {
                self.obs.open(pid, Stage::CalendarWait, now);
                if self.tors[node.index()].has_active_traffic(port) {
                    self.kick_port(node, port, now, q);
                }
            }
            IngressDecision::Offloaded { .. } => {
                self.obs.open(pid, Stage::CalendarWait, now);
                if let Some(t) = self.tors[node.index()].next_offload_recall() {
                    self.schedule_recall(node, t.max(now), q);
                }
            }
            IngressDecision::Dropped(reason) => {
                self.counters.switch_drops += 1;
                self.obs.dropped(pid, now, 1);
                let _ = reason;
            }
            IngressDecision::NoRoute(p) => {
                if self.install_routes_for(node, dst) {
                    // Retry once with fresh entries.
                    let res2 = self.tors[node.index()].ingress(p, now);
                    match res2.decision {
                        IngressDecision::DeliverLocal(p2) => {
                            let host = p2.dst_host;
                            self.to_downlink(host, p2, now, q);
                        }
                        IngressDecision::Enqueued { port, .. }
                        | IngressDecision::Trimmed { port, .. } => {
                            self.obs.open(pid, Stage::CalendarWait, now);
                            if self.tors[node.index()].has_active_traffic(port) {
                                self.kick_port(node, port, now, q);
                            }
                        }
                        IngressDecision::Offloaded { .. } => {
                            self.obs.open(pid, Stage::CalendarWait, now);
                            if let Some(t) = self.tors[node.index()].next_offload_recall() {
                                self.schedule_recall(node, t.max(now), q);
                            }
                        }
                        IngressDecision::Dropped(_) => {
                            self.counters.switch_drops += 1;
                            self.obs.dropped(pid, now, 1);
                        }
                        IngressDecision::NoRoute(_) => {
                            self.counters.no_route_drops += 1;
                            self.obs.dropped(pid, now, 2);
                        }
                    }
                    if let Some(msg) = res2.pushback {
                        let hosts: Vec<HostId> = (0..self.cfg.total_hosts())
                            .map(HostId)
                            .filter(|h| self.hosts[h.index()].tor == src_tor_of_pkt)
                            .collect();
                        for h in hosts {
                            q.schedule_after(now, 2_000, Event::HostControl(h, msg.clone()));
                        }
                    }
                } else {
                    self.counters.no_route_drops += 1;
                    self.obs.dropped(pid, now, 2);
                }
            }
        }
    }

    fn on_port_free(
        &mut self,
        node: NodeId,
        port: PortId,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) {
        self.port_pending[node.index()][port.index()] = false;
        // All slice-relative gating below runs on the switch's LOCAL clock:
        // a badly synchronized node holds off / transmits at the wrong
        // instants, and the fabric (global truth) punishes it — which is
        // exactly what the guardband budget of §7 must absorb.
        let local = self.sync.local_time(node.index(), now);
        // Hold transmission during the (locally perceived) guardband.
        if self.slice_cfg.num_slices > 1 && self.slice_cfg.in_guardband(local) {
            let resume_local = self.slice_cfg.slice_start(local) + self.slice_cfg.guard_ns;
            let resume = self.sync.global_fire_time(node.index(), resume_local);
            self.port_pending[node.index()][port.index()] = true;
            self.counters.guardband_holds += 1;
            self.tele.guardband_holds.inc();
            self.tele.trace.emit(now, TraceKind::GuardbandHold { node, port });
            if self.obs.spans.is_on() {
                if let Some((pid, _)) = self.tors[node.index()].head_packet_ids(port) {
                    self.obs.hold_begin(pid, now);
                }
            }
            q.schedule(resume.max(now + 1), Event::PortFree(node, port));
            return;
        }
        self.obs.profiler.enter(Phase::Drain);
        let popped = self.tors[node.index()].pop_if_fits(port, local, SLICE_END_MARGIN_NS);
        self.obs.profiler.exit(Phase::Drain);
        // Every drain attempt refreshes the EQO estimate inside the switch.
        self.obs.profiler.mark(Phase::EqoTick);
        match popped {
            Some((pkt, tx)) => {
                if cfg!(feature = "strict-invariants") && self.slice_cfg.num_slices > 1 {
                    // Guardband containment: the hold branch above already
                    // deferred guardband instants, and pop_if_fits only
                    // releases a packet whose serialization makes the slice
                    // tail. A transmit start inside the guardband or a tail
                    // past the slice end would be silently eaten by the
                    // fabric instead.
                    let in_guard = self.slice_cfg.in_guardband(local);
                    let overrun =
                        tx + SLICE_END_MARGIN_NS > self.slice_cfg.remaining_in_slice(local);
                    if in_guard || overrun {
                        // Last act before dying: push the flight recorder
                        // into the frame stream so a subscriber sees the
                        // trace tail that led here.
                        self.flight_dump(now, FlightTrigger::Invariant);
                    }
                    assert!(!in_guard, "transmit started inside the guardband at local {local}");
                    assert!(
                        !overrun,
                        "transmit of {tx} ns overruns the slice: {} ns remain at local {local}",
                        self.slice_cfg.remaining_in_slice(local),
                    );
                }
                if let Some((fi, corrupted)) = self.fault_tx_check(node, port) {
                    // Drain-and-drop: the port still cycles at line rate so
                    // the queue behind the fault drains, but the packet is
                    // charged to the fault instead of reaching the fabric.
                    self.port_pending[node.index()][port.index()] = true;
                    q.schedule_after(now, tx, Event::PortFree(node, port));
                    self.counters.fault_drops += 1;
                    let code = self.faults.as_ref().map_or(0, |f| f.specs[fi].kind.code());
                    if let Some(f) = &mut self.faults {
                        let c = &mut f.per_fault[fi];
                        if corrupted {
                            c.corrupted += 1;
                        } else {
                            c.dropped += 1;
                        }
                    }
                    self.tele.trace.emit(now, TraceKind::FaultDrop { node, port });
                    self.obs.profiler.mark(Phase::FaultRuntime);
                    self.obs.fault_dropped(pkt.id, now, code);
                    return;
                }
                self.tx_bytes_per_port[node.index()][port.index()] += pkt.size as u64;
                // Port is busy for the serialization time.
                self.port_pending[node.index()][port.index()] = true;
                q.schedule_after(now, tx, Event::PortFree(node, port));
                self.obs.serialized(pkt.id, now, tx);
                match self.fabric.transit(node, port, now) {
                    openoptics_fabric::Transit::Delivered { node: peer, latency_ns, .. } => {
                        let delay = self.pipeline.delay_ns(pkt.size, &mut self.rng) + latency_ns;
                        self.obs.open(pkt.id, Stage::Propagation, now + tx);
                        q.schedule_after(now, delay.max(tx), Event::TorIngress(peer, pkt));
                    }
                    lost => {
                        self.counters.fabric_drops += 1;
                        self.obs.dropped(pkt.id, now + tx, 3);
                        if self.tele.trace.is_on() {
                            let kind = match lost {
                                openoptics_fabric::Transit::Guardband => {
                                    TraceKind::GuardbandDrop { node, port }
                                }
                                _ => TraceKind::NoCircuitDrop { node, port },
                            };
                            self.tele.trace.emit(now, kind);
                        }
                    }
                }
            }
            None => {
                if self.tors[node.index()].has_active_traffic(port) && self.slice_cfg.num_slices > 1
                {
                    // Head doesn't fit before the slice ends: retry after
                    // the next rotation + guard (local clock).
                    let next_local = self.slice_cfg.slice_start(local)
                        + self.slice_cfg.slice_ns
                        + self.slice_cfg.guard_ns;
                    let next = self.sync.global_fire_time(node.index(), next_local);
                    self.port_pending[node.index()][port.index()] = true;
                    q.schedule(next.max(now + 1), Event::PortFree(node, port));
                }
            }
        }
    }

    fn on_rotate(&mut self, node: NodeId, now: SimTime, q: &mut EventQueue<Event>) {
        let corrupted = self.faults.as_ref().and_then(|f| f.slice_mask.get(&node).copied());
        match corrupted {
            Some(i) => {
                // Schedule corruption: the switch misses the boundary and
                // stays in its stale slice while the fabric moves on, so
                // its transmissions meet dark circuits. The miss is
                // replayed (resync) when the window closes.
                if let Some(f) = &mut self.faults {
                    f.per_fault[i].missed_rotations += 1;
                    f.rotation_lag[i] += 1;
                }
                self.obs.profiler.mark(Phase::FaultRuntime);
            }
            None => {
                self.obs.profiler.enter(Phase::Rotation);
                self.tors[node.index()].rotate(now);
                self.obs.profiler.exit(Phase::Rotation);
            }
        }
        let fire = now + self.slice_cfg.slice_ns;
        q.schedule(fire, Event::Rotate(node));
        self.kick_all_ports(node, now, q);
        if self.pause_mode == PauseMode::DirectCircuit {
            // Broadcast circuit notifications ahead of the next boundary so
            // hosts resume exactly when their circuit opens (§5.2: switches
            // notify hosts of upcoming circuit connections).
            let lead = 200;
            let at = now + (self.slice_cfg.slice_ns - lead);
            q.schedule(at, Event::Timer(Timer::NotifyHosts(node)));
        }
    }

    /// Pre-boundary circuit-notification broadcast for one switch: set each
    /// host's pause state for the slice about to begin and wake senders.
    fn on_notify_hosts(&mut self, node: NodeId, now: SimTime, q: &mut EventQueue<Event>) {
        if self.pause_mode != PauseMode::DirectCircuit {
            return;
        }
        let upcoming = self.slice_cfg.advance(self.tors[node.index()].current_slice(), 1);
        self.refresh_pause_state(node, upcoming, now);
        let hosts: Vec<HostId> = (0..self.cfg.total_hosts())
            .map(HostId)
            .filter(|h| self.hosts[h.index()].tor == node)
            .collect();
        for h in hosts {
            self.counters.circuit_notifications += 1;
            if self.hosts[h.index()].vma.has_sendable(now)
                || self.hosts[h.index()].vma_mice.has_sendable(now)
            {
                self.pump_host(h, now, q);
            }
        }
    }

    fn on_elec_free(&mut self, node: NodeId, now: SimTime, q: &mut EventQueue<Event>) {
        let bw = self.elec_bw.expect("electrical fabric enabled");
        let link = &mut self.elec[node.index()];
        if now < link.busy_until {
            q.schedule(link.busy_until, Event::ElecFree(node));
            return;
        }
        match link.queue.pop() {
            Some((len, pkt)) => {
                let tx = bw.tx_time_ns(len as u64).max(1);
                link.busy_until = now + tx;
                let busy_until = link.busy_until;
                q.schedule(busy_until, Event::ElecFree(node));
                self.obs.serialized(pkt.id, now, tx);
                self.obs.open(pkt.id, Stage::Propagation, now + tx);
                let host = pkt.dst_host;
                let core = self.cfg.electrical_core_ns;
                q.schedule_after(now, tx + core, Event::HostRx(host, pkt));
            }
            None => {
                link.draining = false;
            }
        }
    }

    fn on_downlink_free(&mut self, host: HostId, now: SimTime, q: &mut EventQueue<Event>) {
        let bw = self.cfg.host_link_bandwidth();
        let link = &mut self.downlinks[host.index()];
        if now < link.busy_until {
            q.schedule(link.busy_until, Event::DownlinkFree(host));
            return;
        }
        match link.queue.pop() {
            Some((len, pkt)) => {
                let tx = bw.tx_time_ns(len as u64).max(1);
                link.busy_until = now + tx;
                q.schedule(link.busy_until, Event::DownlinkFree(host));
                q.schedule_after(now, tx, Event::HostRx(host, pkt));
            }
            None => {
                link.draining = false;
            }
        }
    }

    fn on_host_rx(
        &mut self,
        host: HostId,
        mut pkt: Packet,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) {
        // Move the kind out of the delivered packet (it is consumed here)
        // instead of cloning it — Control carries heap-allocated reports.
        match std::mem::replace(&mut pkt.kind, PacketKind::Data) {
            PacketKind::Data => {
                self.counters.delivered_packets += 1;
                self.counters.delivered_payload_bytes += pkt.payload as u64;
                if self.record_delays {
                    self.delay_samples.push(pkt.age_ns(now));
                }
                if pkt.trimmed {
                    // Opera-style trimming: the header made it; NACK the
                    // payload back to the source after a reverse-path delay.
                    self.counters.trimmed_received += 1;
                    self.obs.dropped(pkt.id, now, 5);
                    q.schedule_after(
                        now,
                        5_000,
                        Event::Timer(Timer::NackRetx { flow: pkt.flow, seq: pkt.seq }),
                    );
                    return;
                }
                self.obs.delivered(pkt.id, now);
                let fid = pkt.flow;
                let Some(f) = self.flows.get_mut(&fid) else { return };
                match &mut f.transport {
                    Transport::Paced => {
                        f.delivered = (f.delivered + pkt.payload as u64).min(f.bytes);
                        if f.delivered >= f.bytes && !f.done {
                            self.finish_flow(fid, now, q);
                        }
                    }
                    Transport::Tcp { receiver, .. } | Transport::TdTcp { receiver, .. } => {
                        let cum = receiver.on_data(pkt.seq, pkt.payload);
                        // Send an ACK back through the network.
                        let src_host = f.src_host;
                        let mut ack = Packet::data(
                            0,
                            fid,
                            self.hosts[host.index()].tor,
                            self.hosts[src_host.index()].tor,
                            host,
                            src_host,
                            0,
                            0,
                            now,
                        );
                        ack.id = self.alloc_pkt_id();
                        ack.size = HEADER_BYTES;
                        ack.kind = PacketKind::Ack { cum_ack: cum };
                        self.dispatch_from_host(host, ack, now, q);
                    }
                }
            }
            PacketKind::Ack { cum_ack } => {
                let fid = pkt.flow;
                let mut finished = false;
                let topo = self
                    .flows
                    .get(&fid)
                    .map(|f| {
                        let src_tor = self.hosts[f.src_host.index()].tor;
                        let dst_tor = self.hosts[f.dst_host.index()].tor;
                        self.topology_id(src_tor, dst_tor)
                    })
                    .unwrap_or(0);
                let mut fast_retx = false;
                if let Some(f) = self.flows.get_mut(&fid) {
                    match &mut f.transport {
                        Transport::Tcp { sender, .. } => {
                            let before = sender.fast_retransmits;
                            sender.on_ack(cum_ack, now);
                            fast_retx = sender.fast_retransmits > before;
                            if sender.done() && !f.done {
                                finished = true;
                            }
                        }
                        Transport::TdTcp { sender, .. } => {
                            sender.set_topology(topo, now);
                            let before = sender.fast_retransmits;
                            sender.on_ack(cum_ack, now);
                            fast_retx = sender.fast_retransmits > before;
                            if sender.done() && !f.done {
                                finished = true;
                            }
                        }
                        Transport::Paced => {}
                    }
                }
                if fast_retx {
                    self.counters.fast_retransmits += 1;
                    self.tele
                        .trace
                        .emit(now, TraceKind::Retransmit { flow: fid, kind: RetxKind::FastRetx });
                    self.obs.retransmit_mark(fid, now, 3);
                }
                if finished {
                    self.finish_flow(fid, now, q);
                } else {
                    self.pump_tcp(fid, now);
                    if let Some(f) = self.flows.get(&fid) {
                        self.pump_host(f.src_host, now, q);
                    }
                }
            }
            PacketKind::Probe { echo_of, is_reply } => {
                if is_reply {
                    // pkt.seq carries the forward hop count.
                    let total_hops = to_u8(pkt.seq) + pkt.hops;
                    for t in &mut self.probe_trains {
                        if t.src == host {
                            t.stats.record(echo_of, now, total_hops);
                            break;
                        }
                    }
                } else {
                    let mut reply = Packet::data(
                        0,
                        pkt.flow,
                        self.hosts[host.index()].tor,
                        pkt.src,
                        host,
                        pkt.src_host,
                        pkt.payload,
                        pkt.hops as u64,
                        now,
                    );
                    reply.id = self.alloc_pkt_id();
                    reply.kind = PacketKind::Probe { echo_of, is_reply: true };
                    self.dispatch_from_host(host, reply, now, q);
                }
            }
            PacketKind::Control(msg) => self.on_host_control(host, msg, now, q),
        }
    }

    fn on_host_control(
        &mut self,
        host: HostId,
        msg: ControlMsg,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) {
        match msg {
            ControlMsg::PushBack { dst, slice, cycle } => {
                self.counters.pushback_deliveries += 1;
                // The embargo lasts until the named (cycle, slice) ends.
                let end = (cycle * self.slice_cfg.num_slices as u64 + slice as u64 + 1)
                    * self.slice_cfg.slice_ns;
                self.hosts[host.index()].vma.block_until(dst, SimTime::from_ns(end));
            }
            ControlMsg::CircuitNotify { dst, .. } => {
                if self.hosts[host.index()].vma.resume(dst) {
                    self.tele.trace.emit(now, TraceKind::FlowResume { host, dst });
                }
                self.pump_host(host, now, q);
            }
            _ => {}
        }
    }

    /// Schedule an `OffloadRecall` for `node` at `t` unless one is already
    /// outstanding at exactly that time (see the `recall_outstanding` field
    /// docs for why exact-time dedup is output-preserving).
    fn schedule_recall(&mut self, node: NodeId, t: SimTime, q: &mut EventQueue<Event>) {
        let out = &mut self.recall_outstanding[node.index()];
        if out.contains(&t) {
            return;
        }
        out.push(t);
        q.schedule(t, Event::OffloadRecall(node));
    }

    fn on_offload_recall(&mut self, node: NodeId, now: SimTime, q: &mut EventQueue<Event>) {
        let out = &mut self.recall_outstanding[node.index()];
        if let Some(i) = out.iter().position(|&t| t == now) {
            out.swap_remove(i);
        }
        let due = self.tors[node.index()].offload_due(now);
        for (abs, port, pkt) in due {
            // Host round trip: recall notify + host link serialization.
            let rtt = 2_000 + self.cfg.host_link_bandwidth().tx_time_ns(pkt.size as u64);
            q.schedule_after(now, rtt, Event::Reinject(node, abs, port, pkt));
        }
        if let Some(t) = self.tors[node.index()].next_offload_recall() {
            self.schedule_recall(node, t.max(now + 1), q);
        }
    }

    fn on_reinject(
        &mut self,
        node: NodeId,
        abs: u64,
        port: PortId,
        pkt: Packet,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) {
        let cur = self.tors[node.index()].abs_slice();
        let rank = to_u32(abs.saturating_sub(cur));
        let pid = pkt.id;
        let res = self.tors[node.index()].reinject_offloaded(pkt, port, rank, now);
        match res.decision {
            IngressDecision::Enqueued { port, .. } | IngressDecision::Trimmed { port, .. } => {
                self.obs.open(pid, Stage::CalendarWait, now);
                if self.tors[node.index()].has_active_traffic(port) {
                    self.kick_port(node, port, now, q);
                }
            }
            IngressDecision::Dropped(_) => {
                self.counters.switch_drops += 1;
                self.obs.dropped(pid, now, 1);
            }
            IngressDecision::Offloaded { .. } => {
                self.obs.open(pid, Stage::CalendarWait, now);
                if let Some(t) = self.tors[node.index()].next_offload_recall() {
                    self.schedule_recall(node, t.max(now + 1), q);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, timer: Timer, now: SimTime, q: &mut EventQueue<Event>) {
        match timer {
            Timer::FlowStart(idx) => {
                let p = &self.pending_flows[idx];
                let (src, dst, bytes, transport, service) =
                    (p.src, p.dst, p.bytes, p.transport, p.service);
                self.start_flow(now, src, dst, bytes, transport, FlowKind::Plain, service, q);
            }
            Timer::MemcachedOp { app, client_idx } => {
                let (params, server, client, stop_at, service) = {
                    let a = &self.memcached[app];
                    (a.params, a.server, a.clients[client_idx], a.stop_at, a.service)
                };
                if now >= stop_at {
                    return;
                }
                self.start_flow(
                    now,
                    client,
                    server,
                    params.set_bytes as u64,
                    TransportKind::Paced,
                    FlowKind::Request { response_bytes: params.response_bytes },
                    service,
                    q,
                );
                let gap = params.next_gap_ns(&mut self.rng);
                q.schedule_after(now, gap, Event::Timer(Timer::MemcachedOp { app, client_idx }));
            }
            Timer::FlowWatchdog(fid) => {
                let retransmit = self.watchdog_retransmit;
                let Some(f) = self.flows.get_mut(&fid) else { return };
                if f.done {
                    return;
                }
                if retransmit && f.delivered == f.delivered_at_last_watchdog && f.queued >= f.bytes
                {
                    // Stalled with everything queued: re-send the missing tail.
                    let missing = f.bytes - f.delivered;
                    f.queued = f.bytes - missing;
                    let src = f.src_host;
                    self.hosts[src.index()].backlog.push(fid);
                    self.counters.watchdog_retransmits += 1;
                    self.tele
                        .trace
                        .emit(now, TraceKind::Retransmit { flow: fid, kind: RetxKind::Watchdog });
                    self.obs.retransmit_mark(fid, now, 1);
                    self.pump_host(src, now, q);
                }
                if let Some(f) = self.flows.get_mut(&fid) {
                    f.delivered_at_last_watchdog = f.delivered;
                }
                q.schedule_after(now, WATCHDOG_NS, Event::Timer(Timer::FlowWatchdog(fid)));
            }
            Timer::TcpRto(fid) => {
                let mut fired = false;
                let mut deadline = None;
                let mut src = None;
                if let Some(f) = self.flows.get_mut(&fid) {
                    if f.done {
                        return;
                    }
                    match &mut f.transport {
                        Transport::Tcp { sender, .. } => {
                            fired = sender.maybe_timeout(now);
                            deadline = Some(sender.rto_deadline());
                            src = Some(f.src_host);
                        }
                        Transport::TdTcp { sender, .. } => {
                            fired = sender.maybe_timeout(now);
                            deadline = Some(sender.rto_deadline());
                            src = Some(f.src_host);
                        }
                        Transport::Paced => {}
                    }
                }
                if fired {
                    self.counters.rto_retransmits += 1;
                    self.tele
                        .trace
                        .emit(now, TraceKind::Retransmit { flow: fid, kind: RetxKind::Rto });
                    self.obs.retransmit_mark(fid, now, 2);
                    self.pump_tcp(fid, now);
                    if let Some(s) = src {
                        self.pump_host(s, now, q);
                    }
                }
                if let Some(d) = deadline {
                    q.schedule(d.max(now + 1), Event::Timer(Timer::TcpRto(fid)));
                }
            }
            Timer::NotifyHosts(node) => self.on_notify_hosts(node, now, q),
            Timer::FaultStart(i) => self.on_fault_transition(i, true, now, q),
            Timer::FaultEnd(i) => self.on_fault_transition(i, false, now, q),
            Timer::NackRetx { flow, seq } => {
                let Some(f) = self.flows.get_mut(&flow) else { return };
                if f.done {
                    return;
                }
                let len = to_u32((f.bytes.saturating_sub(seq)).min(MSS as u64));
                if len == 0 {
                    return;
                }
                let (src, dst_host) = (f.src_host, f.dst_host);
                let dst_tor = self.hosts[dst_host.index()].tor;
                self.hosts[src.index()]
                    .vma
                    .send(dst_tor, Segment { flow, dst_host, bytes: len, seq, queued_at: now })
                    .ok();
                self.counters.nack_retransmits += 1;
                self.tele.trace.emit(now, TraceKind::Retransmit { flow, kind: RetxKind::Nack });
                self.obs.retransmit_mark(flow, now, 4);
                self.pump_host(src, now, q);
            }
            Timer::ProbeSend(t) => {
                let (src, dst, payload, interval) = {
                    let tr = &mut self.probe_trains[t];
                    if tr.remaining == 0 {
                        return;
                    }
                    tr.remaining -= 1;
                    tr.stats.sent += 1;
                    (tr.src, tr.dst, tr.payload, tr.interval_ns)
                };
                let dst_tor = self.hosts[dst.index()].tor;
                let src_tor = self.hosts[src.index()].tor;
                let mut pkt = Packet::data(0, 0, src_tor, dst_tor, src, dst, payload, 0, now);
                pkt.id = self.alloc_pkt_id();
                pkt.kind = PacketKind::Probe { echo_of: now, is_reply: false };
                self.dispatch_from_host(src, pkt, now, q);
                q.schedule_after(now, interval, Event::Timer(Timer::ProbeSend(t)));
            }
            Timer::Sample => {
                let stats = q.stats();
                self.take_sample(now, Some(stats));
                q.schedule_after(now, self.cfg.sample_every_ns, Event::Timer(Timer::Sample));
            }
        }
    }
}

impl World for Engine {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, q: &mut EventQueue<Event>) {
        // Promote any pending TA reconfiguration whose delay has elapsed so
        // every consumer (routing, pause state, dispatch) sees the schedule
        // that is physically active at `now`.
        self.fabric.schedule_at(now);
        self.obs.profiler.event(phase_of(&event), now);
        match event {
            Event::HostTx(h) => self.on_host_tx(h, now, q),
            Event::TorIngress(n, p) => self.on_tor_ingress(n, p, now, q),
            Event::HostRx(h, p) => self.on_host_rx(h, p, now, q),
            Event::Rotate(n) => self.on_rotate(n, now, q),
            Event::PortFree(n, p) => self.on_port_free(n, p, now, q),
            Event::ElecFree(n) => self.on_elec_free(n, now, q),
            Event::DownlinkFree(h) => self.on_downlink_free(h, now, q),
            Event::OffloadRecall(n) => self.on_offload_recall(n, now, q),
            Event::Reinject(n, abs, port, pkt) => self.on_reinject(n, abs, port, pkt, now, q),
            Event::HostControl(h, m) => self.on_host_control(h, m, now, q),
            Event::Timer(t) => self.on_timer(t, now, q),
        }
    }
}
