//! The unified TA/TO control workflow (§4.1).
//!
//! TO architectures pre-load their whole optical schedule and never talk to
//! the controller again; TA architectures run a loop — collect a traffic
//! matrix, recompute topology and routing, deploy — at reconfiguration
//! periods from seconds (c-Through) to a day (Jupiter). Fig. 5's example
//! programs all share the shape
//!
//! ```python
//! while (TM = net.collect(interval)):
//!     circuits = topo(TM); paths = routing(circuits)
//!     net.deploy_routing(paths); net.deploy_topo(circuits)
//! ```
//!
//! [`run_ta_loop`] is that loop: it alternates measurement windows with a
//! user-provided reconfiguration step, the step receiving the freshly
//! collected TM (historical volume) and the pending host demand.

use crate::net::OpenOpticsNet;
use openoptics_sim::time::SimTime;
use openoptics_topo::TrafficMatrix;

/// What one reconfiguration step sees.
pub struct LoopObservation<'a> {
    /// The network, for deploy calls.
    pub net: &'a mut OpenOpticsNet,
    /// Traffic volume observed during the last window (switch-side
    /// collection, the Jupiter mode).
    pub tm: &'a TrafficMatrix,
    /// Pending per-destination demand sitting in host segment queues
    /// (host-side collection, the c-Through mode).
    pub pending: &'a TrafficMatrix,
    /// Which iteration this is (0-based).
    pub iteration: u32,
}

/// Run `iterations` rounds of the TA workflow: run the network for
/// `interval`, then hand the collected matrices to `reconfigure`. Returns
/// the last collected traffic matrix.
///
/// The reconfigure step typically calls the single reconfigure hook,
/// [`OpenOpticsNet::reconfigure`] (or a deprecated `*_reconfigure` wrapper
/// such as [`crate::archs::jupiter_reconfigure`]), or its own
/// `deploy_topo` / `deploy_routing` sequence.
pub fn run_ta_loop(
    net: &mut OpenOpticsNet,
    interval: SimTime,
    iterations: u32,
    mut reconfigure: impl FnMut(LoopObservation<'_>),
) -> TrafficMatrix {
    let mut last = TrafficMatrix::zeros(net.engine.cfg.node_num as usize);
    for iteration in 0..iterations {
        let tm = net.collect(interval);
        let pending = net.collect_pending();
        reconfigure(LoopObservation { net, tm: &tm, pending: &pending, iteration });
        last = tm;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archs;
    use crate::config::NetConfig;
    use crate::engine::TransportKind;
    use openoptics_proto::{HostId, NodeId};

    #[test]
    fn ta_loop_reconfigures_toward_observed_traffic() {
        let cfg = NetConfig {
            node_num: 8,
            uplink: 2,
            slice_ns: 100_000,
            sync_err_ns: 0,
            // A fast OCS so each loop iteration's reconfiguration lands
            // before the next measurement window ends.
            ocs_reconfig_ns: 500_000,
            ..Default::default()
        };
        let mut net = archs::jupiter(cfg).expect("jupiter deploys on the workflow test config");
        // Persistent hotspot 0 -> 5 plus background.
        for k in 0..40u64 {
            net.add_flow(
                SimTime::from_ns(100 + k * 400_000),
                HostId(0),
                HostId(5),
                120_000,
                TransportKind::Paced,
            );
            net.add_flow(
                SimTime::from_ns(300 + k * 900_000),
                HostId(2),
                HostId(6),
                20_000,
                TransportKind::Paced,
            );
        }
        let mut rounds = 0;
        run_ta_loop(&mut net, SimTime::from_ms(4), 3, |obs| {
            rounds += 1;
            assert!(obs.tm.total() > 0.0, "round {} saw no traffic", obs.iteration);
            obs.net.reconfigure(obs.tm).expect("jupiter evolution stays valid");
        });
        assert_eq!(rounds, 3);
        // Let the last reconfiguration land and traffic drain.
        net.run_for(SimTime::from_ms(60));
        // After evolution the hotspot pair holds a direct circuit.
        assert!(
            net.engine.schedule().port_to(NodeId(0), NodeId(5), 0).is_some(),
            "hotspot should have earned a direct circuit"
        );
        assert_eq!(net.fct().outstanding(), 0, "all flows complete despite reconfigs");
    }
}
