//! Architecture descriptors — the data-driven composition layer behind
//! [`OpenOpticsNet::deploy`](crate::OpenOpticsNet::deploy).
//!
//! The paper's Table 1 promises one programmable API over many optical DCN
//! designs; the unified-routing line of work (PAPERS.md) shows why that is
//! possible: rotor, OCS, and AWGR designs all reduce to routing on one
//! time-expanded graph. This module captures what actually *differs*
//! between designs as plain data — an [`Architecture`] is a schedule
//! generator ([`ScheduleGen`]), a fabric class ([`ArchClass`]),
//! dispatch/pause defaults, and a handful of config fixups — so the preset
//! builders in [`crate::archs`] are all instances of the same
//! `deploy(cfg, arch, routing, lookup, multipath)` entry point instead of
//! eight hand-wired recipes.
//!
//! Pairing an architecture with a routing scheme is checked up front by
//! [`check_compat`]: a scheme whose declared capabilities (see
//! [`RoutingAlgorithm`](openoptics_routing::RoutingAlgorithm)) cannot be
//! satisfied by the deployed schedule or
//! fabric is rejected with a typed [`ConfigError`] instead of compiling
//! silently-wrong (or silently-empty) time-flow tables.
//!
//! This module is also the **only** place dispatch policy and pause mode
//! may be assigned (enforced by the `arch-compose` oolint rule): every
//! composition decision lives in the descriptor, not scattered across call
//! sites.

use crate::config::{ConfigError, NetConfig};
use crate::engine::{DispatchPolicy, Engine, PauseMode};
use openoptics_fabric::{Circuit, OpticalSchedule};
use openoptics_routing::algos::{Direct, Hoho, OperaRouting, Vlb, Wcmp};
use openoptics_routing::{LookupMode, MultipathMode, RoutingAlgorithm};
use openoptics_topo::bvn::mordia_schedule;
use openoptics_topo::expander::opera_schedule;
use openoptics_topo::jupiter::{evolve, uniform_mesh};
use openoptics_topo::matching::edmonds_multi;
use openoptics_topo::round_robin::{round_robin, round_robin_multidim};
use openoptics_topo::sorn::sorn;
use openoptics_topo::TrafficMatrix;

/// A boxed routing scheme plus the lookup/multipath modes it deploys with.
pub type RoutingChoice = (Box<dyn RoutingAlgorithm>, LookupMode, MultipathMode);

/// The fabric class of an architecture (§2.1's taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArchClass {
    /// No optical fabric: the electrical Clos baseline.
    Electrical,
    /// Topology-adjusting: one held topology instance, reconfigured on
    /// demand (c-Through, Jupiter, Mordia).
    Ta,
    /// Traffic-oblivious: a rotating slice schedule (RotorNet, Opera,
    /// Shale).
    To,
    /// A TA/TO hybrid: a rotating schedule skewed by the traffic matrix
    /// (semi-oblivious SORN).
    Hybrid,
}

impl ArchClass {
    /// Short lowercase label (used in sweep tables).
    pub fn label(&self) -> &'static str {
        match self {
            ArchClass::Electrical => "electrical",
            ArchClass::Ta => "ta",
            ArchClass::To => "to",
            ArchClass::Hybrid => "ta+to",
        }
    }
}

/// How an architecture derives its optical schedule — the data-driven
/// replacement for each preset builder's hand-picked topology call.
///
/// Traffic-aware generators carry their target [`TrafficMatrix`] so the
/// same generator can be re-run by the single reconfigure hook
/// ([`crate::OpenOpticsNet::reconfigure`]): [`retarget`](Self::retarget)
/// swaps the matrix in, and [`generate`](Self::generate) produces the next
/// schedule from it (plus the previous circuits, for evolving generators).
#[derive(Clone, Debug)]
pub enum ScheduleGen {
    /// No optical schedule at all (the electrical baseline keeps the empty
    /// single-slice schedule it was created with).
    Empty,
    /// Edmonds max-weight matching over the traffic matrix, held as one
    /// instance (c-Through).
    MaxWeightMatching {
        /// The demand the matching maximizes over.
        tm: TrafficMatrix,
    },
    /// A uniform mesh when no traffic matrix is known; once retargeted,
    /// each regeneration evolves the previous mesh toward the matrix
    /// (Jupiter's 24-hour loop).
    UniformMesh {
        /// The matrix to evolve toward; `None` until the first
        /// [`retarget`](Self::retarget).
        tm: Option<TrafficMatrix>,
    },
    /// Birkhoff–von-Neumann decomposition of the matrix apportioned over
    /// `num_slices` slices (Mordia).
    Bvn {
        /// The demand being decomposed.
        tm: TrafficMatrix,
        /// Slice budget for the decomposition.
        num_slices: u32,
    },
    /// Canonical 1-D round robin (RotorNet).
    RoundRobin,
    /// Per-slice connected expanders (Opera).
    Expander,
    /// `dim`-dimensional round robin on a node grid (Shale).
    GridRoundRobin {
        /// Grid dimensionality; `node_num` must be a perfect `dim`-th
        /// power.
        dim: u32,
    },
    /// SORN skewed round robin: a round-robin base plus `extra_slices`
    /// demand-weighted slices (semi-oblivious).
    Sorn {
        /// The demand the skew reflects.
        tm: TrafficMatrix,
        /// Extra demand-weighted slices appended to the base rotation.
        extra_slices: u32,
    },
}

impl ScheduleGen {
    /// Point the generator at a fresh traffic matrix. No-op for
    /// traffic-oblivious generators.
    pub fn retarget(&mut self, tm: &TrafficMatrix) {
        match self {
            ScheduleGen::MaxWeightMatching { tm: t }
            | ScheduleGen::Bvn { tm: t, .. }
            | ScheduleGen::Sorn { tm: t, .. } => *t = tm.clone(),
            ScheduleGen::UniformMesh { tm: t } => *t = Some(tm.clone()),
            ScheduleGen::Empty
            | ScheduleGen::RoundRobin
            | ScheduleGen::Expander
            | ScheduleGen::GridRoundRobin { .. } => {}
        }
    }

    /// Produce the schedule for `cfg`: the circuits and the slice count.
    /// `prev` is the currently-deployed circuit set (evolving generators
    /// start from it). `None` means the architecture deploys no optical
    /// schedule.
    pub fn generate(&self, cfg: &NetConfig, prev: &[Circuit]) -> Option<(Vec<Circuit>, u32)> {
        match self {
            ScheduleGen::Empty => None,
            ScheduleGen::MaxWeightMatching { tm } => Some((edmonds_multi(tm, cfg.uplink), 1)),
            ScheduleGen::UniformMesh { tm: None } => {
                Some((uniform_mesh(cfg.node_num, cfg.uplink), 1))
            }
            ScheduleGen::UniformMesh { tm: Some(tm) } => {
                Some((evolve(prev, tm, cfg.node_num, cfg.uplink), 1))
            }
            ScheduleGen::Bvn { tm, num_slices } => Some(mordia_schedule(tm, *num_slices)),
            ScheduleGen::RoundRobin => Some(round_robin(cfg.node_num, cfg.uplink)),
            ScheduleGen::Expander => Some(opera_schedule(cfg.node_num, cfg.uplink)),
            ScheduleGen::GridRoundRobin { dim } => Some(round_robin_multidim(cfg.node_num, *dim)),
            ScheduleGen::Sorn { tm, extra_slices } => {
                Some(sorn(tm, cfg.node_num, cfg.uplink, *extra_slices))
            }
        }
    }
}

/// Everything that distinguishes one preset optical DCN design from
/// another, as data: the schedule generator, the fabric class, the
/// dispatch/pause defaults, and the config fixups the old builders applied
/// silently. Feed one to [`crate::OpenOpticsNet::deploy`] together with any
/// compatible routing scheme.
#[derive(Clone, Debug)]
pub struct Architecture {
    name: &'static str,
    class: ArchClass,
    schedule: ScheduleGen,
    dispatch: DispatchPolicy,
    pause: PauseMode,
    default_routing: fn() -> RoutingChoice,
    /// `cfg.electrical_gbps` fallback when the caller left it 0.
    electrical_gbps_default: u64,
    /// Forced `cfg.emulated_fabric` value (real-OCS designs), if any.
    emulated_fabric: Option<bool>,
    /// Forced `cfg.congestion_policy`, if any.
    congestion_policy: Option<&'static str>,
    /// Minimum uplink count the design needs (`cfg.uplink` is raised).
    min_uplink: u16,
    /// Exact uplink count the design requires (`cfg.uplink` is replaced).
    fixed_uplink: Option<u16>,
}

impl Architecture {
    /// Traditional electrical Clos baseline: no optical schedule,
    /// everything rides the electrical fabric.
    pub fn clos() -> Self {
        Architecture {
            name: "clos",
            class: ArchClass::Electrical,
            schedule: ScheduleGen::Empty,
            dispatch: DispatchPolicy::ElectricalOnly,
            pause: PauseMode::None,
            default_routing: || (Box::new(Direct), LookupMode::PerHop, MultipathMode::None),
            electrical_gbps_default: 100,
            emulated_fabric: None,
            congestion_policy: None,
            min_uplink: 0,
            fixed_uplink: None,
        }
    }

    /// c-Through (TA-1): max-weight-matching circuits on a real MEMS OCS;
    /// mice ride a rate-limited electrical fabric, elephants pause for
    /// their direct circuit.
    pub fn cthrough(tm: &TrafficMatrix) -> Self {
        Architecture {
            name: "cthrough",
            class: ArchClass::Ta,
            schedule: ScheduleGen::MaxWeightMatching { tm: tm.clone() },
            dispatch: DispatchPolicy::MiceElectrical,
            pause: PauseMode::DirectCircuit,
            default_routing: || (Box::new(Direct), LookupMode::PerHop, MultipathMode::None),
            electrical_gbps_default: 10,
            emulated_fabric: Some(false),
            congestion_policy: Some("wait"),
            min_uplink: 0,
            fixed_uplink: None,
        }
    }

    /// Jupiter (TA-2): an evolving uniform mesh on MEMS-class OCS.
    pub fn jupiter() -> Self {
        Architecture {
            name: "jupiter",
            class: ArchClass::Ta,
            schedule: ScheduleGen::UniformMesh { tm: None },
            dispatch: DispatchPolicy::OpticalOnly,
            pause: PauseMode::None,
            default_routing: || {
                (Box::new(Wcmp::default()), LookupMode::PerHop, MultipathMode::PerFlow)
            },
            electrical_gbps_default: 0,
            emulated_fabric: Some(false),
            congestion_policy: None,
            min_uplink: 2,
            fixed_uplink: None,
        }
    }

    /// Mordia (TA-1 with microsecond slices): BvN decomposition of the
    /// matrix over `num_slices` slices on the emulated fabric.
    pub fn mordia(tm: &TrafficMatrix, num_slices: u32) -> Self {
        Architecture {
            name: "mordia",
            class: ArchClass::Ta,
            schedule: ScheduleGen::Bvn { tm: tm.clone(), num_slices },
            dispatch: DispatchPolicy::OpticalOnly,
            pause: PauseMode::None,
            default_routing: || (Box::new(Direct), LookupMode::PerHop, MultipathMode::None),
            electrical_gbps_default: 0,
            emulated_fabric: None,
            congestion_policy: Some("wait"),
            min_uplink: 0,
            fixed_uplink: None,
        }
    }

    /// RotorNet (TO): canonical 1-D round robin.
    pub fn rotornet() -> Self {
        Architecture {
            name: "rotornet",
            class: ArchClass::To,
            schedule: ScheduleGen::RoundRobin,
            dispatch: DispatchPolicy::OpticalOnly,
            pause: PauseMode::None,
            default_routing: || (Box::new(Vlb), LookupMode::PerHop, MultipathMode::PerPacket),
            electrical_gbps_default: 0,
            emulated_fabric: None,
            congestion_policy: None,
            min_uplink: 0,
            fixed_uplink: None,
        }
    }

    /// Opera (TO): per-slice connected expanders.
    pub fn opera() -> Self {
        Architecture {
            name: "opera",
            class: ArchClass::To,
            schedule: ScheduleGen::Expander,
            dispatch: DispatchPolicy::OpticalOnly,
            pause: PauseMode::None,
            default_routing: || {
                (
                    Box::new(OperaRouting::default()),
                    LookupMode::SourceRouting,
                    MultipathMode::PerPacket,
                )
            },
            electrical_gbps_default: 0,
            emulated_fabric: None,
            congestion_policy: None,
            min_uplink: 2,
            fixed_uplink: None,
        }
    }

    /// Shale (TO): a `dim`-dimensional round robin with a single optical
    /// uplink per node (§4.2).
    pub fn shale(dim: u32) -> Self {
        Architecture {
            name: "shale",
            class: ArchClass::To,
            schedule: ScheduleGen::GridRoundRobin { dim },
            dispatch: DispatchPolicy::OpticalOnly,
            pause: PauseMode::None,
            default_routing: || {
                (Box::new(Hoho::default()), LookupMode::PerHop, MultipathMode::None)
            },
            electrical_gbps_default: 0,
            emulated_fabric: None,
            congestion_policy: None,
            min_uplink: 0,
            fixed_uplink: Some(1),
        }
    }

    /// Semi-oblivious (TA+TO, Fig. 5c): SORN skewed round robin.
    pub fn semi_oblivious(tm: &TrafficMatrix, extra_slices: u32) -> Self {
        Architecture {
            name: "semi_oblivious",
            class: ArchClass::Hybrid,
            schedule: ScheduleGen::Sorn { tm: tm.clone(), extra_slices },
            dispatch: DispatchPolicy::OpticalOnly,
            pause: PauseMode::None,
            default_routing: || (Box::new(Vlb), LookupMode::PerHop, MultipathMode::PerPacket),
            electrical_gbps_default: 0,
            emulated_fabric: None,
            congestion_policy: None,
            min_uplink: 0,
            fixed_uplink: None,
        }
    }

    /// Override the dispatch policy (e.g. hybrid experiments running
    /// RotorNet with `HybridDirect`).
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Override the pause mode.
    pub fn with_pause(mut self, pause: PauseMode) -> Self {
        self.pause = pause;
        self
    }

    /// The preset's name (`"rotornet"`, …) — used in sweep tables.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The fabric class.
    pub fn class(&self) -> ArchClass {
        self.class
    }

    /// The schedule generator.
    pub fn schedule(&self) -> &ScheduleGen {
        &self.schedule
    }

    /// Mutable access to the schedule generator (reconfigure hooks adjust
    /// generator parameters — e.g. SORN's extra slices — before
    /// regenerating).
    pub fn schedule_mut(&mut self) -> &mut ScheduleGen {
        &mut self.schedule
    }

    /// The preset's canonical routing pairing (what the thin `archs::*`
    /// wrappers deploy).
    pub fn default_routing(&self) -> RoutingChoice {
        (self.default_routing)()
    }

    /// Apply the design's configuration fixups, **documented** here rather
    /// than silently applied as the old builders did:
    ///
    /// * `electrical_gbps`: designs with an electrical component (Clos at
    ///   100 Gbps, c-Through rate-limited to 10 Gbps per §6) fill it in
    ///   when the caller left it 0;
    /// * `emulated_fabric`: real-OCS designs (c-Through, Jupiter) force it
    ///   `false`;
    /// * `congestion_policy`: direct-circuit designs (c-Through, Mordia)
    ///   force `"wait"` — deferring onto another pair's slice would strand
    ///   packets;
    /// * `uplink`: raised to the design minimum (mesh designs need ≥ 2
    ///   stripes) or pinned exactly (Shale's single optical uplink).
    pub fn apply_defaults(&self, cfg: &mut NetConfig) {
        if cfg.electrical_gbps == 0 && self.electrical_gbps_default > 0 {
            cfg.electrical_gbps = self.electrical_gbps_default;
        }
        if let Some(e) = self.emulated_fabric {
            cfg.emulated_fabric = e;
        }
        if let Some(p) = self.congestion_policy {
            cfg.congestion_policy = p.to_string();
        }
        if cfg.uplink < self.min_uplink {
            cfg.uplink = self.min_uplink;
        }
        if let Some(u) = self.fixed_uplink {
            cfg.uplink = u;
        }
    }

    /// Generate this architecture's schedule for `cfg`, evolving from the
    /// currently-deployed `prev` circuits where applicable.
    pub fn generate(&self, cfg: &NetConfig, prev: &[Circuit]) -> Option<(Vec<Circuit>, u32)> {
        self.schedule.generate(cfg, prev)
    }

    /// Install the descriptor's dispatch policy and pause mode on the
    /// engine. The one sanctioned assignment site (see the `arch-compose`
    /// lint rule).
    pub(crate) fn install_policies(&self, engine: &mut Engine) {
        engine.policy = self.dispatch;
        engine.pause_mode = self.pause;
    }
}

/// Check that `algo` can produce correct tables on `schedule` over a fabric
/// with (or without) full per-hop emulation. Returns the typed
/// [`ConfigError`] that [`crate::OpenOpticsNet::deploy_routing`] surfaces
/// as [`crate::Error::Config`].
///
/// Three rules, each keyed off a declared [`RoutingAlgorithm`] capability:
///
/// 1. a scheme that routes across the rotating slice schedule
///    ([`needs_arrival_slice`](RoutingAlgorithm::needs_arrival_slice))
///    cannot run on a single held topology instance — there is no rotation
///    to ride;
/// 2. a source-routing scheme
///    ([`requires_source_routing`](RoutingAlgorithm::requires_source_routing))
///    cannot run when `emulated_fabric = false`: packets traverse a real
///    OCS between plain per-hop switches, so a full hop list pushed at the
///    source has nowhere to live;
/// 3. a scheme that searches within one topology instance
///    ([`routes_within_instance`](RoutingAlgorithm::routes_within_instance))
///    needs every slice it can be asked about to connect all nodes —
///    deployed on sparse matchings it would compile empty tables for most
///    pairs.
pub fn check_compat(
    algo: &dyn RoutingAlgorithm,
    schedule: &OpticalSchedule,
    emulated_fabric: bool,
) -> Result<(), ConfigError> {
    let num_slices = schedule.slice_config().num_slices;
    if algo.needs_arrival_slice() && num_slices == 1 {
        return Err(ConfigError {
            field: "routing",
            reason: format!(
                "`{}` routes across the rotating slice schedule, but the deployed \
                 schedule holds a single topology instance (num_slices = 1); \
                 pair it with a TO architecture or pick a TA scheme",
                algo.name()
            ),
        });
    }
    if algo.requires_source_routing() && !emulated_fabric {
        return Err(ConfigError {
            field: "routing",
            reason: format!(
                "`{}` requires source routing, but `emulated_fabric = false` means \
                 per-hop lookups on plain switches across a real OCS — a full hop \
                 list pushed at the source cannot be honored",
                algo.name()
            ),
        });
    }
    if algo.routes_within_instance() {
        for slice in 0..num_slices {
            if !schedule.slice_is_connected(slice) {
                return Err(ConfigError {
                    field: "routing",
                    reason: format!(
                        "`{}` searches for paths within one topology instance, but \
                         slice {slice} of the deployed schedule does not connect \
                         all nodes; within-instance schemes need connected \
                         instances (a mesh or per-slice expanders)",
                        algo.name()
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openoptics_routing::algos::{Ecmp, Ucmp};

    fn sched(circuits: &[Circuit], slices: u32, n: u32, uplink: u16) -> OpticalSchedule {
        let cfg = NetConfig { node_num: n, uplink, ..Default::default() };
        OpticalSchedule::build(cfg.slice_config(slices), n, uplink, circuits)
            .expect("test schedule valid")
    }

    fn rotor8() -> OpticalSchedule {
        let (c, s) = round_robin(8, 1);
        sched(&c, s, 8, 1)
    }

    fn mesh8() -> OpticalSchedule {
        let c = uniform_mesh(8, 2);
        sched(&c, 1, 8, 2)
    }

    #[test]
    fn to_scheme_on_held_instance_is_rejected() {
        let e = check_compat(&Vlb, &mesh8(), true).unwrap_err();
        assert_eq!(e.field, "routing");
        assert!(e.reason.contains("single topology instance"), "{}", e.reason);
        // The same scheme on a rotating schedule is fine.
        check_compat(&Vlb, &rotor8(), true).expect("vlb on rotor");
    }

    #[test]
    fn source_routing_on_real_ocs_is_rejected() {
        let e = check_compat(&Ucmp::default(), &rotor8(), false).unwrap_err();
        assert!(e.reason.contains("source routing"), "{}", e.reason);
        check_compat(&Ucmp::default(), &rotor8(), true).expect("ucmp on emulated fabric");
    }

    #[test]
    fn within_instance_scheme_needs_connected_slices() {
        // Round-robin slices are sparse matchings: ECMP would compile empty
        // tables for most pairs.
        let e = check_compat(&Ecmp::default(), &rotor8(), true).unwrap_err();
        assert!(e.reason.contains("does not connect all nodes"), "{}", e.reason);
        // A mesh instance connects everything.
        check_compat(&Ecmp::default(), &mesh8(), true).expect("ecmp on mesh");
    }

    #[test]
    fn preset_default_pairings_are_compatible() {
        let tm = TrafficMatrix::zeros(8);
        for arch in [
            Architecture::clos(),
            Architecture::cthrough(&tm),
            Architecture::jupiter(),
            Architecture::mordia(&tm, 8),
            Architecture::rotornet(),
            Architecture::opera(),
            Architecture::shale(3),
            Architecture::semi_oblivious(&tm, 4),
        ] {
            let mut cfg = NetConfig { node_num: 8, uplink: 1, ..Default::default() };
            arch.apply_defaults(&mut cfg);
            let (algo, _, _) = arch.default_routing();
            let schedule = match arch.generate(&cfg, &[]) {
                Some((circuits, slices)) => sched(&circuits, slices, cfg.node_num, cfg.uplink),
                None => OpticalSchedule::empty(cfg.slice_config(1), cfg.node_num, cfg.uplink),
            };
            check_compat(algo.as_ref(), &schedule, cfg.emulated_fabric)
                .unwrap_or_else(|e| panic!("{} default pairing rejected: {e}", arch.name()));
        }
    }

    #[test]
    fn apply_defaults_documents_the_fixups() {
        let mut cfg = NetConfig { node_num: 8, uplink: 1, ..Default::default() };
        Architecture::clos().apply_defaults(&mut cfg);
        assert_eq!(cfg.electrical_gbps, 100);

        let mut cfg = NetConfig { node_num: 8, uplink: 1, ..Default::default() };
        Architecture::cthrough(&TrafficMatrix::zeros(8)).apply_defaults(&mut cfg);
        assert_eq!(cfg.electrical_gbps, 10);
        assert!(!cfg.emulated_fabric);
        assert_eq!(cfg.congestion_policy, "wait");

        // A caller-set rate is respected.
        let mut cfg =
            NetConfig { node_num: 8, uplink: 1, electrical_gbps: 40, ..Default::default() };
        Architecture::clos().apply_defaults(&mut cfg);
        assert_eq!(cfg.electrical_gbps, 40);

        let mut cfg = NetConfig { node_num: 8, uplink: 1, ..Default::default() };
        Architecture::jupiter().apply_defaults(&mut cfg);
        assert_eq!(cfg.uplink, 2, "mesh needs multiple stripes");

        let mut cfg = NetConfig { node_num: 8, uplink: 4, ..Default::default() };
        Architecture::shale(3).apply_defaults(&mut cfg);
        assert_eq!(cfg.uplink, 1, "shale pins a single optical uplink");
    }

    #[test]
    fn retarget_feeds_traffic_aware_generators() {
        let mut tm = TrafficMatrix::zeros(8);
        tm.set(openoptics_proto::NodeId(0), openoptics_proto::NodeId(5), 100.0);
        let cfg = NetConfig { node_num: 8, uplink: 1, ..Default::default() };

        // UniformMesh starts traffic-agnostic, evolves once retargeted.
        let mut gen = ScheduleGen::UniformMesh { tm: None };
        let (mesh, s) = gen.generate(&cfg, &[]).expect("mesh");
        assert_eq!(s, 1);
        gen.retarget(&tm);
        let (evolved, _) = gen.generate(&cfg, &mesh).expect("evolved mesh");
        assert!(!evolved.is_empty());

        // Oblivious generators ignore retarget.
        let mut rr = ScheduleGen::RoundRobin;
        let before = rr.generate(&cfg, &[]);
        rr.retarget(&tm);
        assert_eq!(
            before.as_ref().map(|(c, s)| (c.len(), *s)),
            rr.generate(&cfg, &[]).as_ref().map(|(c, s)| (c.len(), *s))
        );
    }
}
