//! Preset architectures (Fig. 5 and §6 Case I).
//!
//! Each builder mirrors one of the paper's example programs: a static
//! configuration plus a few API calls. They return a ready
//! [`OpenOpticsNet`]; attach workloads and call `run_for` to experiment.
//!
//! | builder | class | schedule | routing | fabric |
//! |---|---|---|---|---|
//! | [`clos`] | baseline | none | — | electrical only |
//! | [`cthrough`] | TA-1 | Edmonds max-weight matching | direct (elephants) | MEMS + electrical |
//! | [`jupiter`] | TA-2 | evolving uniform mesh | WCMP | MEMS |
//! | [`mordia`] | TA-1 | BvN decomposition | direct per slice | emulated |
//! | [`rotornet`] | TO | 1-D round robin | VLB (or caller's) | emulated |
//! | [`opera`] | TO | per-slice expanders | Opera source routing | emulated |
//! | [`semi_oblivious`] | TA+TO | SORN skewed round robin | VLB | emulated |

use crate::config::NetConfig;
use crate::engine::{DispatchPolicy, PauseMode};
use crate::net::OpenOpticsNet;
use openoptics_routing::algos::{Direct, Hoho, OperaRouting, Vlb, Wcmp};
use openoptics_routing::{LookupMode, MultipathMode, RoutingAlgorithm};
use openoptics_topo::bvn::mordia_schedule;
use openoptics_topo::expander::opera_schedule;
use openoptics_topo::jupiter::{evolve, uniform_mesh};
use openoptics_topo::matching::edmonds_multi;
use openoptics_topo::round_robin::{round_robin, round_robin_multidim};
use openoptics_topo::sorn::sorn;
use openoptics_topo::TrafficMatrix;

/// Traditional Clos baseline: everything rides the electrical fabric.
/// `cfg.electrical_gbps` must be non-zero.
pub fn clos(mut cfg: NetConfig) -> OpenOpticsNet {
    if cfg.electrical_gbps == 0 {
        cfg.electrical_gbps = 100;
    }
    let mut net = OpenOpticsNet::new(cfg);
    net.engine.policy = DispatchPolicy::ElectricalOnly;
    net
}

/// c-Through (TA-1): a parallel electrical fabric carries mice; elephants
/// are paused at hosts and released over max-weight-matching circuits on
/// the MEMS OCS, recomputed from the traffic matrix per reconfiguration.
pub fn cthrough(mut cfg: NetConfig, tm: &TrafficMatrix) -> OpenOpticsNet {
    if cfg.electrical_gbps == 0 {
        cfg.electrical_gbps = 10; // rate-limited as in the original design (§6)
    }
    cfg.emulated_fabric = false; // real MEMS OCS
                                 // Direct-circuit traffic must wait for its own circuit; deferring onto
                                 // a different pair's slice would strand packets (as for Mordia).
    cfg.congestion_policy = "wait".to_string();
    let uplinks = cfg.uplink;
    let mut net = OpenOpticsNet::new(cfg);
    let circuits = edmonds_multi(tm, uplinks);
    net.deploy_topo(&circuits, 1).expect("matching is conflict-free");
    net.deploy_routing(Direct, LookupMode::PerHop, MultipathMode::None);
    net.engine.policy = DispatchPolicy::MiceElectrical;
    net.engine.pause_mode = PauseMode::DirectCircuit;
    net
}

/// Reconfigure a running c-Through network for a fresh traffic matrix.
pub fn cthrough_reconfigure(net: &mut OpenOpticsNet, tm: &TrafficMatrix) {
    let circuits = edmonds_multi(tm, net.engine.cfg.uplink);
    net.deploy_topo(&circuits, 1).expect("matching is conflict-free");
    net.deploy_routing(Direct, LookupMode::PerHop, MultipathMode::None);
}

/// Jupiter (TA-2): starts from a uniform mesh (empty TM) with WCMP; call
/// [`jupiter_reconfigure`] with a collected TM to evolve the topology
/// (the paper does so every 24 h).
pub fn jupiter(mut cfg: NetConfig) -> OpenOpticsNet {
    cfg.emulated_fabric = false; // MEMS-class OCS
    if cfg.uplink < 2 {
        cfg.uplink = 2; // a mesh needs multiple stripes
    }
    let (nodes, uplinks) = (cfg.node_num, cfg.uplink);
    let mut net = OpenOpticsNet::new(cfg);
    let mesh = uniform_mesh(nodes, uplinks);
    net.deploy_topo(&mesh, 1).expect("uniform mesh is conflict-free");
    net.deploy_routing(Wcmp::default(), LookupMode::PerHop, MultipathMode::PerFlow);
    net.engine.policy = DispatchPolicy::OpticalOnly;
    net
}

/// One Jupiter evolution step toward a new traffic matrix.
pub fn jupiter_reconfigure(net: &mut OpenOpticsNet, tm: &TrafficMatrix) {
    let (nodes, uplinks) = (net.engine.cfg.node_num, net.engine.cfg.uplink);
    let prev = net.engine.schedule().circuits().to_vec();
    let next = evolve(&prev, tm, nodes, uplinks);
    net.deploy_topo(&next, 1).expect("evolved mesh is conflict-free");
    net.deploy_routing(Wcmp::default(), LookupMode::PerHop, MultipathMode::PerFlow);
}

/// Mordia (TA-1 with microsecond slices): Birkhoff–von-Neumann decomposition
/// of the traffic matrix apportioned over `num_slices` slices on the
/// emulated fabric; traffic waits for its pair's slice (direct routing).
pub fn mordia(mut cfg: NetConfig, tm: &TrafficMatrix, num_slices: u32) -> OpenOpticsNet {
    // Mordia's schedule only lights demand pairs: a deferred packet would
    // launch into a circuit with no onward route. Accept slice misses
    // instead (Wait).
    cfg.congestion_policy = "wait".to_string();
    let mut net = OpenOpticsNet::new(cfg);
    let (circuits, slices) = mordia_schedule(tm, num_slices);
    net.deploy_topo(&circuits, slices).expect("BvN slices are matchings");
    net.deploy_routing(Direct, LookupMode::PerHop, MultipathMode::None);
    net.engine.policy = DispatchPolicy::OpticalOnly;
    net
}

/// RotorNet (TO): 1-D round-robin schedule with VLB packet spraying —
/// the Fig. 5(a) program.
pub fn rotornet(cfg: NetConfig) -> OpenOpticsNet {
    rotornet_with(cfg, Vlb, MultipathMode::PerPacket)
}

/// RotorNet with a caller-chosen routing scheme (UCMP, HOHO, direct — the
/// §6 case studies run several on the same schedule).
pub fn rotornet_with<A: RoutingAlgorithm + 'static>(
    cfg: NetConfig,
    algo: A,
    multipath: MultipathMode,
) -> OpenOpticsNet {
    let (nodes, uplinks) = (cfg.node_num, cfg.uplink);
    let mut net = OpenOpticsNet::new(cfg);
    let (circuits, slices) = round_robin(nodes, uplinks);
    net.deploy_topo(&circuits, slices).expect("round robin is conflict-free");
    net.deploy_routing(algo, LookupMode::PerHop, multipath);
    net.engine.policy = DispatchPolicy::OpticalOnly;
    net
}

/// Opera (TO): per-slice connected expanders with source-routed
/// within-slice shortest paths.
pub fn opera(mut cfg: NetConfig) -> OpenOpticsNet {
    if cfg.uplink < 2 {
        cfg.uplink = 2; // Opera needs per-slice connectivity
    }
    let (nodes, uplinks) = (cfg.node_num, cfg.uplink);
    let mut net = OpenOpticsNet::new(cfg);
    let (circuits, slices) = opera_schedule(nodes, uplinks);
    net.deploy_topo(&circuits, slices).expect("expander schedule is conflict-free");
    net.deploy_routing(
        OperaRouting::default(),
        LookupMode::SourceRouting,
        MultipathMode::PerPacket,
    );
    net.engine.policy = DispatchPolicy::OpticalOnly;
    net
}

/// Shale (TO): a multi-dimensional round robin — nodes form a `dim`-D grid
/// and rotate within each dimension with a single optical uplink (§4.2:
/// "Shale uses a three-dimensional round-robin with a single optical
/// uplink per node"). Requires `node_num` to be a perfect `dim`-th power.
/// Routed with HOHO, whose earliest-arrival tours naturally follow the
/// grid's dimension-ordered circuits.
pub fn shale(mut cfg: NetConfig, dim: u32) -> OpenOpticsNet {
    cfg.uplink = 1;
    let nodes = cfg.node_num;
    let mut net = OpenOpticsNet::new(cfg);
    let (circuits, slices) = round_robin_multidim(nodes, dim);
    net.deploy_topo(&circuits, slices).expect("grid round robin is conflict-free");
    net.deploy_routing(Hoho::default(), LookupMode::PerHop, MultipathMode::None);
    net.engine.policy = DispatchPolicy::OpticalOnly;
    net
}

/// Semi-oblivious (TA+TO, Fig. 5c): a skewed round-robin reflecting the
/// traffic matrix, redeployed periodically by the caller via
/// [`semi_oblivious_reconfigure`].
pub fn semi_oblivious(cfg: NetConfig, tm: &TrafficMatrix, extra_slices: u32) -> OpenOpticsNet {
    let (nodes, uplinks) = (cfg.node_num, cfg.uplink);
    let mut net = OpenOpticsNet::new(cfg);
    let (circuits, slices) = sorn(tm, nodes, uplinks, extra_slices);
    net.deploy_topo(&circuits, slices).expect("sorn schedule is conflict-free");
    net.deploy_routing(Vlb, LookupMode::PerHop, MultipathMode::PerPacket);
    net.engine.policy = DispatchPolicy::OpticalOnly;
    net
}

/// Refresh a semi-oblivious schedule for a new TM (the 10-minute loop of
/// Fig. 5c).
pub fn semi_oblivious_reconfigure(net: &mut OpenOpticsNet, tm: &TrafficMatrix, extra_slices: u32) {
    let (nodes, uplinks) = (net.engine.cfg.node_num, net.engine.cfg.uplink);
    let (circuits, slices) = sorn(tm, nodes, uplinks, extra_slices);
    net.deploy_topo(&circuits, slices).expect("sorn schedule is conflict-free");
    net.deploy_routing(Vlb, LookupMode::PerHop, MultipathMode::PerPacket);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TransportKind;
    use openoptics_proto::{HostId, NodeId};
    use openoptics_sim::time::SimTime;

    fn cfg8() -> NetConfig {
        NetConfig {
            node_num: 8,
            uplink: 1,
            hosts_per_node: 1,
            slice_ns: 10_000,
            guard_ns: 200,
            sync_err_ns: 0,
            ..Default::default()
        }
    }

    fn run_one_flow(net: &mut OpenOpticsNet, bytes: u64) -> u64 {
        net.add_flow(SimTime::from_ns(100), HostId(0), HostId(5), bytes, TransportKind::Paced);
        net.run_for(SimTime::from_ms(20));
        assert_eq!(net.fct().completed().len(), 1, "flow did not complete");
        net.fct().completed()[0].fct_ns()
    }

    #[test]
    fn clos_carries_traffic_electrically() {
        let mut net = clos(cfg8());
        let fct = run_one_flow(&mut net, 20_000);
        assert!(fct > 0);
        let (delivered, _) = net.engine.fabric_stats();
        assert_eq!(delivered, 0, "no packet should touch the optical fabric");
    }

    #[test]
    fn rotornet_vlb_delivers() {
        let mut net = rotornet(cfg8());
        run_one_flow(&mut net, 50_000);
        let (delivered, _) = net.engine.fabric_stats();
        assert!(delivered > 0);
    }

    #[test]
    fn opera_delivers_with_source_routing() {
        let mut net = opera(cfg8());
        run_one_flow(&mut net, 50_000);
    }

    #[test]
    fn mordia_serves_demand_pairs() {
        let mut tm = TrafficMatrix::zeros(8);
        tm.set(NodeId(0), NodeId(5), 100.0);
        tm.set(NodeId(1), NodeId(2), 50.0);
        let mut net = mordia(cfg8(), &tm, 8);
        run_one_flow(&mut net, 20_000);
    }

    #[test]
    fn jupiter_wcmp_delivers() {
        let mut cfg = cfg8();
        cfg.uplink = 2;
        let mut net = jupiter(cfg);
        run_one_flow(&mut net, 20_000);
    }

    #[test]
    fn cthrough_splits_mice_and_elephants() {
        let mut tm = TrafficMatrix::zeros(8);
        tm.set(NodeId(0), NodeId(5), 1e9);
        let mut cfg = cfg8();
        cfg.elephant_threshold = 100_000;
        let mut net = cthrough(cfg, &tm);
        // A mouse (electrical) and an elephant (optical, paused until its
        // held circuit — which exists for pair 0-5).
        net.add_flow(SimTime::from_ns(100), HostId(1), HostId(2), 10_000, TransportKind::Paced);
        net.add_flow(SimTime::from_ns(100), HostId(0), HostId(5), 2_000_000, TransportKind::Paced);
        net.run_for(SimTime::from_ms(50));
        assert_eq!(net.fct().completed().len(), 2, "both flows complete");
    }

    #[test]
    fn semi_oblivious_deploys_and_delivers() {
        let mut tm = TrafficMatrix::zeros(8);
        tm.set(NodeId(0), NodeId(5), 1000.0);
        let mut net = semi_oblivious(cfg8(), &tm, 4);
        run_one_flow(&mut net, 50_000);
    }
}
