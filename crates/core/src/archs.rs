//! Preset architectures (Fig. 5 and §6 Case I) — thin wrappers over the
//! unified composition API.
//!
//! Each builder mirrors one of the paper's example programs: a static
//! configuration plus a few API calls. Since the composition redesign they
//! are all one-liners over [`OpenOpticsNet::deploy`] with the matching
//! [`Architecture`] descriptor and its canonical routing pairing; prefer
//! calling `deploy` directly in new code — it is what lets any routing
//! scheme pair with any architecture (or be rejected with a typed
//! [`Error::Config`]).
//!
//! | builder | descriptor | class | schedule | default routing |
//! |---|---|---|---|---|
//! | [`clos`] | [`Architecture::clos`] | baseline | none | — (electrical only) |
//! | [`cthrough`] | [`Architecture::cthrough`] | TA-1 | Edmonds max-weight matching | direct (elephants) |
//! | [`jupiter`] | [`Architecture::jupiter`] | TA-2 | evolving uniform mesh | WCMP |
//! | [`mordia`] | [`Architecture::mordia`] | TA-1 | BvN decomposition | direct per slice |
//! | [`rotornet`] | [`Architecture::rotornet`] | TO | 1-D round robin | VLB (or caller's) |
//! | [`opera`] | [`Architecture::opera`] | TO | per-slice expanders | Opera source routing |
//! | [`shale`] | [`Architecture::shale`] | TO | multi-dim round robin | HOHO |
//! | [`semi_oblivious`] | [`Architecture::semi_oblivious`] | TA+TO | SORN skewed round robin | VLB |
//!
//! All builders return `Result<OpenOpticsNet, Error>`: invalid schedules
//! (e.g. a conflicting matching) surface as [`Error::Deploy`] instead of
//! the panics the pre-redesign builders hid behind `expect`.

use crate::arch::Architecture;
use crate::config::NetConfig;
use crate::error::Error;
use crate::net::OpenOpticsNet;
use openoptics_routing::{LookupMode, MultipathMode, RoutingAlgorithm};
use openoptics_topo::TrafficMatrix;

/// Traditional Clos baseline: everything rides the electrical fabric.
/// `cfg.electrical_gbps` defaults to 100 when left 0.
///
/// Deprecated in favor of
/// `OpenOpticsNet::deploy_preset(cfg, Architecture::clos())`.
pub fn clos(cfg: NetConfig) -> Result<OpenOpticsNet, Error> {
    OpenOpticsNet::deploy_preset(cfg, Architecture::clos())
}

/// c-Through (TA-1): a parallel electrical fabric carries mice; elephants
/// are paused at hosts and released over max-weight-matching circuits on
/// the MEMS OCS, recomputed from the traffic matrix per reconfiguration.
///
/// Deprecated in favor of
/// `OpenOpticsNet::deploy_preset(cfg, Architecture::cthrough(tm))`.
pub fn cthrough(cfg: NetConfig, tm: &TrafficMatrix) -> Result<OpenOpticsNet, Error> {
    OpenOpticsNet::deploy_preset(cfg, Architecture::cthrough(tm))
}

/// Reconfigure a running c-Through network for a fresh traffic matrix.
///
/// Deprecated in favor of the single reconfigure hook,
/// [`OpenOpticsNet::reconfigure`].
pub fn cthrough_reconfigure(net: &mut OpenOpticsNet, tm: &TrafficMatrix) -> Result<(), Error> {
    net.reconfigure(tm)
}

/// Jupiter (TA-2): starts from a uniform mesh (empty TM) with WCMP; call
/// [`jupiter_reconfigure`] with a collected TM to evolve the topology
/// (the paper does so every 24 h).
///
/// Deprecated in favor of
/// `OpenOpticsNet::deploy_preset(cfg, Architecture::jupiter())`.
pub fn jupiter(cfg: NetConfig) -> Result<OpenOpticsNet, Error> {
    OpenOpticsNet::deploy_preset(cfg, Architecture::jupiter())
}

/// One Jupiter evolution step toward a new traffic matrix.
///
/// Deprecated in favor of the single reconfigure hook,
/// [`OpenOpticsNet::reconfigure`].
pub fn jupiter_reconfigure(net: &mut OpenOpticsNet, tm: &TrafficMatrix) -> Result<(), Error> {
    net.reconfigure(tm)
}

/// Mordia (TA-1 with microsecond slices): Birkhoff–von-Neumann decomposition
/// of the traffic matrix apportioned over `num_slices` slices on the
/// emulated fabric; traffic waits for its pair's slice (direct routing).
///
/// Deprecated in favor of
/// `OpenOpticsNet::deploy_preset(cfg, Architecture::mordia(tm, num_slices))`.
pub fn mordia(cfg: NetConfig, tm: &TrafficMatrix, num_slices: u32) -> Result<OpenOpticsNet, Error> {
    OpenOpticsNet::deploy_preset(cfg, Architecture::mordia(tm, num_slices))
}

/// RotorNet (TO): 1-D round-robin schedule with VLB packet spraying —
/// the Fig. 5(a) program.
///
/// Deprecated in favor of
/// `OpenOpticsNet::deploy_preset(cfg, Architecture::rotornet())`.
pub fn rotornet(cfg: NetConfig) -> Result<OpenOpticsNet, Error> {
    OpenOpticsNet::deploy_preset(cfg, Architecture::rotornet())
}

/// RotorNet with a caller-chosen routing scheme (UCMP, HOHO, direct — the
/// §6 case studies run several on the same schedule).
///
/// Deprecated: this was the only pairing hook before the composition
/// redesign; it is now literally
/// `OpenOpticsNet::deploy(cfg, Architecture::rotornet(), algo, PerHop, multipath)`.
pub fn rotornet_with<A: RoutingAlgorithm + 'static>(
    cfg: NetConfig,
    algo: A,
    multipath: MultipathMode,
) -> Result<OpenOpticsNet, Error> {
    OpenOpticsNet::deploy(
        cfg,
        Architecture::rotornet(),
        Box::new(algo),
        LookupMode::PerHop,
        multipath,
    )
}

/// Opera (TO): per-slice connected expanders with source-routed
/// within-slice shortest paths.
///
/// Deprecated in favor of
/// `OpenOpticsNet::deploy_preset(cfg, Architecture::opera())`.
pub fn opera(cfg: NetConfig) -> Result<OpenOpticsNet, Error> {
    OpenOpticsNet::deploy_preset(cfg, Architecture::opera())
}

/// Shale (TO): a multi-dimensional round robin — nodes form a `dim`-D grid
/// and rotate within each dimension with a single optical uplink (§4.2:
/// "Shale uses a three-dimensional round-robin with a single optical
/// uplink per node"). Requires `node_num` to be a perfect `dim`-th power.
/// Routed with HOHO, whose earliest-arrival tours naturally follow the
/// grid's dimension-ordered circuits.
///
/// Deprecated in favor of
/// `OpenOpticsNet::deploy_preset(cfg, Architecture::shale(dim))`.
pub fn shale(cfg: NetConfig, dim: u32) -> Result<OpenOpticsNet, Error> {
    OpenOpticsNet::deploy_preset(cfg, Architecture::shale(dim))
}

/// Semi-oblivious (TA+TO, Fig. 5c): a skewed round-robin reflecting the
/// traffic matrix, redeployed periodically by the caller via
/// [`semi_oblivious_reconfigure`].
///
/// Deprecated in favor of
/// `OpenOpticsNet::deploy_preset(cfg, Architecture::semi_oblivious(tm, extra_slices))`.
pub fn semi_oblivious(
    cfg: NetConfig,
    tm: &TrafficMatrix,
    extra_slices: u32,
) -> Result<OpenOpticsNet, Error> {
    OpenOpticsNet::deploy_preset(cfg, Architecture::semi_oblivious(tm, extra_slices))
}

/// Refresh a semi-oblivious schedule for a new TM (the 10-minute loop of
/// Fig. 5c), adjusting the extra-slice budget.
///
/// Deprecated in favor of the single reconfigure hook,
/// [`OpenOpticsNet::reconfigure`] (adjust `extra_slices` via
/// [`OpenOpticsNet::arch_mut`] when it changes).
pub fn semi_oblivious_reconfigure(
    net: &mut OpenOpticsNet,
    tm: &TrafficMatrix,
    extra_slices: u32,
) -> Result<(), Error> {
    if let Some(arch) = net.arch_mut() {
        if let crate::arch::ScheduleGen::Sorn { extra_slices: e, .. } = arch.schedule_mut() {
            *e = extra_slices;
        }
    }
    net.reconfigure(tm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TransportKind;
    use openoptics_proto::{HostId, NodeId};
    use openoptics_sim::time::SimTime;

    fn cfg8() -> NetConfig {
        NetConfig {
            node_num: 8,
            uplink: 1,
            hosts_per_node: 1,
            slice_ns: 10_000,
            guard_ns: 200,
            sync_err_ns: 0,
            ..Default::default()
        }
    }

    fn run_one_flow(net: &mut OpenOpticsNet, bytes: u64) -> u64 {
        net.add_flow(SimTime::from_ns(100), HostId(0), HostId(5), bytes, TransportKind::Paced);
        net.run_for(SimTime::from_ms(20));
        assert_eq!(net.fct().completed().len(), 1, "flow did not complete");
        net.fct().completed()[0].fct_ns()
    }

    #[test]
    fn clos_carries_traffic_electrically() {
        let mut net = clos(cfg8()).expect("clos deploys on the 8-node test config");
        let fct = run_one_flow(&mut net, 20_000);
        assert!(fct > 0);
        let (delivered, _) = net.engine.fabric_stats();
        assert_eq!(delivered, 0, "no packet should touch the optical fabric");
    }

    #[test]
    fn rotornet_vlb_delivers() {
        let mut net = rotornet(cfg8()).expect("rotornet deploys on the 8-node test config");
        run_one_flow(&mut net, 50_000);
        let (delivered, _) = net.engine.fabric_stats();
        assert!(delivered > 0);
    }

    #[test]
    fn opera_delivers_with_source_routing() {
        let mut net = opera(cfg8()).expect("opera deploys on the 8-node test config");
        run_one_flow(&mut net, 50_000);
    }

    #[test]
    fn mordia_serves_demand_pairs() {
        let mut tm = TrafficMatrix::zeros(8);
        tm.set(NodeId(0), NodeId(5), 100.0);
        tm.set(NodeId(1), NodeId(2), 50.0);
        let mut net = mordia(cfg8(), &tm, 8).expect("mordia deploys on the 8-node test config");
        run_one_flow(&mut net, 20_000);
    }

    #[test]
    fn jupiter_wcmp_delivers() {
        let mut cfg = cfg8();
        cfg.uplink = 2;
        let mut net = jupiter(cfg).expect("jupiter deploys on the test config");
        run_one_flow(&mut net, 20_000);
    }

    #[test]
    fn cthrough_splits_mice_and_elephants() {
        let mut tm = TrafficMatrix::zeros(8);
        tm.set(NodeId(0), NodeId(5), 1e9);
        let mut cfg = cfg8();
        cfg.elephant_threshold = 100_000;
        let mut net = cthrough(cfg, &tm).expect("c-through deploys on the test config");
        // A mouse (electrical) and an elephant (optical, paused until its
        // held circuit — which exists for pair 0-5).
        net.add_flow(SimTime::from_ns(100), HostId(1), HostId(2), 10_000, TransportKind::Paced);
        net.add_flow(SimTime::from_ns(100), HostId(0), HostId(5), 2_000_000, TransportKind::Paced);
        net.run_for(SimTime::from_ms(50));
        assert_eq!(net.fct().completed().len(), 2, "both flows complete");
    }

    #[test]
    fn semi_oblivious_deploys_and_delivers() {
        let mut tm = TrafficMatrix::zeros(8);
        tm.set(NodeId(0), NodeId(5), 1000.0);
        let mut net = semi_oblivious(cfg8(), &tm, 4)
            .expect("semi-oblivious deploys on the 8-node test config");
        run_one_flow(&mut net, 50_000);
    }

    #[test]
    fn reconfigure_hook_shared_by_all_wrappers() {
        // jupiter → evolve; cthrough → fresh matching; semi_oblivious →
        // new SORN slice count. All through OpenOpticsNet::reconfigure.
        let mut tm = TrafficMatrix::zeros(8);
        tm.set(NodeId(0), NodeId(5), 500.0);

        let mut net = jupiter(cfg8()).expect("jupiter deploys on the 8-node test config");
        jupiter_reconfigure(&mut net, &tm).expect("jupiter reconfigures under the test demand");
        run_one_flow(&mut net, 20_000);

        let mut net = cthrough(cfg8(), &tm).expect("c-through deploys on the 8-node test config");
        cthrough_reconfigure(&mut net, &tm).expect("c-through reconfigures under the test demand");

        let mut net = semi_oblivious(cfg8(), &tm, 2)
            .expect("semi-oblivious deploys on the 8-node test config");
        let before = net.engine.schedule().slice_config().num_slices;
        semi_oblivious_reconfigure(&mut net, &tm, 6)
            .expect("semi-oblivious reconfigures under the test demand");
        let after = net.engine.schedule().slice_config().num_slices;
        assert!(after > before, "extra slices must grow the schedule ({before} -> {after})");
    }

    #[test]
    fn reconfigure_without_descriptor_is_typed_error() {
        let mut net = OpenOpticsNet::new(cfg8());
        let e = net.reconfigure(&TrafficMatrix::zeros(8)).unwrap_err();
        assert!(matches!(e, Error::Config(_)), "got {e}");
    }

    #[test]
    fn incompatible_pairings_are_rejected_with_config_errors() {
        use openoptics_routing::algos::{Ecmp, Ucmp, Vlb};
        fn rejection(r: Result<OpenOpticsNet, Error>) -> Error {
            match r {
                Err(e) => e,
                Ok(_) => panic!("pairing should have been rejected"),
            }
        }
        // TO scheme on a held instance.
        let e = rejection(OpenOpticsNet::deploy(
            cfg8(),
            Architecture::jupiter(),
            Box::new(Vlb),
            LookupMode::PerHop,
            MultipathMode::PerPacket,
        ));
        assert!(matches!(e, Error::Config(_)), "got {e}");
        // Source routing on a real (non-emulated) OCS fabric.
        let tm = TrafficMatrix::zeros(8);
        let e = rejection(OpenOpticsNet::deploy(
            cfg8(),
            Architecture::cthrough(&tm),
            Box::new(Ucmp::default()),
            LookupMode::PerHop,
            MultipathMode::PerPacket,
        ));
        assert!(matches!(e, Error::Config(_)), "got {e}");
        // Within-instance search over sparse round-robin matchings.
        let e = rejection(OpenOpticsNet::deploy(
            cfg8(),
            Architecture::rotornet(),
            Box::new(Ecmp::default()),
            LookupMode::PerHop,
            MultipathMode::PerFlow,
        ));
        assert!(matches!(e, Error::Config(_)), "got {e}");
    }
}
