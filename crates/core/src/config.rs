//! Static configuration (§4.1).
//!
//! "Users specify high-level network behavior via a static configuration
//! (json file) for hardware setups (e.g., OCSes count and structure,
//! optical uplinks per endpoint, and time slice duration), along with a
//! Python program that invokes the API functions." The Rust equivalent:
//! a JSON-deserializable [`NetConfig`] plus a program against
//! [`crate::net::OpenOpticsNet`].

use crate::json;
use openoptics_sim::rate::Bandwidth;
use openoptics_sim::time::SliceConfig;

/// The static configuration file contents.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Endpoint node type: `"rack"` (ToR-centric) or `"host"`
    /// (host-centric; modeled identically with one host per node).
    pub node: String,
    /// Number of endpoint nodes attached to the optical fabric.
    pub node_num: u32,
    /// Optical uplinks per endpoint node.
    pub uplink: u16,
    /// Hosts below each ToR.
    pub hosts_per_node: u32,
    /// Time slice duration, ns.
    pub slice_ns: u64,
    /// Guardband at the start of each slice, ns.
    pub guard_ns: u64,
    /// Optical uplink rate, Gbps.
    pub uplink_gbps: u64,
    /// Host access-link rate, Gbps.
    pub host_link_gbps: u64,
    /// OCS reconfiguration delay (TA workflows), ns.
    pub ocs_reconfig_ns: u64,
    /// Use the emulated optical fabric (adds cut-through latency) instead
    /// of a real OCS (§5.3).
    pub emulated_fabric: bool,
    /// Parallel electrical fabric rate, Gbps; 0 disables it.
    pub electrical_gbps: u64,
    /// One-way latency across the electrical fabric (two extra switch
    /// pipelines), ns.
    pub electrical_core_ns: u64,
    /// Calendar queues per optical uplink.
    pub num_queues: usize,
    /// Byte capacity of each calendar queue.
    pub queue_capacity: u64,
    /// Congestion-detection service armed.
    pub congestion_detection: bool,
    /// Congestion threshold, bytes.
    pub congestion_threshold: u64,
    /// Congestion response: `"drop"`, `"trim"`, or `"defer"`.
    pub congestion_policy: String,
    /// Traffic push-back service armed.
    pub pushback: bool,
    /// Buffer offloading armed: ranks beyond `offload_keep_ranks` park on
    /// hosts.
    pub offload: bool,
    /// Ranks kept on the switch when offloading.
    pub offload_keep_ranks: u32,
    /// Offload recall lead time, ns.
    pub offload_return_lead_ns: u64,
    /// EQO update interval, ns.
    pub eqo_interval_ns: u64,
    /// Clock synchronization error bound, ns (0 = perfect sync).
    pub sync_err_ns: u64,
    /// Physical per-slice dead window of the optical device, ns (the
    /// hardware portion of the guardband; the rest is system hold-off).
    pub fabric_dead_ns: u64,
    /// OCS count ("OCSes count and structure", §4.1): 0 = one large OCS
    /// carrying every fiber (the testbed's Polatis); k > 0 = k devices with
    /// uplink `p` of every node cabled to device `p mod k` (parallel
    /// rails, as in RotorNet/Opera deployments).
    pub ocs_count: u16,
    /// Ports per OCS device; 0 = auto-size to the cabling.
    pub ocs_ports: u32,
    /// Defer-response window: how many slices past the planned one the
    /// congestion service may push a packet.
    pub defer_max_extra_slices: u32,
    /// Ablation switch: when `true` the congestion detector reads the
    /// calendar queues' ground-truth occupancy instead of the EQO estimate
    /// (impossible on real hardware — the ghost-thread limitation §5.2).
    pub eqo_ground_truth: bool,
    /// vma segment-queue capacity per destination, bytes.
    pub segment_queue_bytes: u64,
    /// PIAS-style elephant threshold for flow aging, bytes.
    pub elephant_threshold: u64,
    /// Telemetry registry armed: counters/gauges/histograms and the trace
    /// stream record. `false` leaves every instrument detached (zero-cost
    /// disabled mode: hot paths see a single `Option` branch).
    pub telemetry: bool,
    /// Trace-event buffer capacity (records kept; later events are counted
    /// but dropped so exports stay deterministic). 0 disables tracing while
    /// keeping metrics on.
    pub trace_capacity: u64,
    /// Lifecycle-span sampling stride: record causal begin/end spans for
    /// every Nth flow (flows whose id is congruent to `seed % N`). 0
    /// disables span recording entirely (the default — spans never touch
    /// the hot path unless asked for).
    pub span_sample_every: u64,
    /// Span-event buffer capacity. When full, *new* lifecycle trees are
    /// skipped (and counted) but already-open spans still complete, so the
    /// recorded stream stays well-formed.
    pub span_capacity: u64,
    /// Telemetry sampling cadence, ns of sim time between time-series
    /// samples: each tick snapshots every counter/gauge plus the
    /// per-service latency summaries into the time-series store and the
    /// subscription frame stream. 0 disables sampling entirely — the
    /// sampling timer is never scheduled, so the hot path cost is zero.
    pub sample_every_ns: u64,
    /// Worker budget for intra-run execution. `1` runs the classic serial
    /// loop; `> 1` routes `run_for` through conservative-lookahead epochs
    /// (windows derived from the optical schedule — see
    /// `Fabric::conservative_lookahead_ns`), the barrier structure that
    /// sharded execution synchronizes on. Output is byte-identical at any
    /// value — the lookahead contract is exactly what makes that hold.
    pub workers: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            node: "rack".to_string(),
            node_num: 8,
            uplink: 1,
            hosts_per_node: 1,
            slice_ns: 100_000,
            guard_ns: 1_000,
            uplink_gbps: 100,
            host_link_gbps: 100,
            ocs_reconfig_ns: 25_000_000,
            emulated_fabric: true,
            electrical_gbps: 0,
            electrical_core_ns: 3_000,
            num_queues: 32,
            queue_capacity: 2 * 1024 * 1024,
            congestion_detection: true,
            congestion_threshold: 2 * 1024 * 1024,
            congestion_policy: "defer".to_string(),
            pushback: false,
            offload: false,
            offload_keep_ranks: 8,
            offload_return_lead_ns: 20_000,
            eqo_interval_ns: 50,
            sync_err_ns: 28,
            fabric_dead_ns: 100,
            ocs_count: 0,
            ocs_ports: 0,
            defer_max_extra_slices: 31,
            eqo_ground_truth: false,
            segment_queue_bytes: 4 * 1024 * 1024,
            elephant_threshold: 1_000_000,
            telemetry: true,
            trace_capacity: 4_096,
            span_sample_every: 0,
            span_capacity: 65_536,
            sample_every_ns: 0,
            workers: 1,
            seed: 1,
        }
    }
}

/// Expand once per `NetConfig` field: keeps JSON parse and serialize in
/// lockstep with the struct definition (a field added here is both read and
/// written, or the compiler complains about the struct literal).
macro_rules! for_each_config_field {
    ($m:ident) => {
        $m!(str node);
        $m!(u32 node_num);
        $m!(u16 uplink);
        $m!(u32 hosts_per_node);
        $m!(u64 slice_ns);
        $m!(u64 guard_ns);
        $m!(u64 uplink_gbps);
        $m!(u64 host_link_gbps);
        $m!(u64 ocs_reconfig_ns);
        $m!(bool emulated_fabric);
        $m!(u64 electrical_gbps);
        $m!(u64 electrical_core_ns);
        $m!(usize num_queues);
        $m!(u64 queue_capacity);
        $m!(bool congestion_detection);
        $m!(u64 congestion_threshold);
        $m!(str congestion_policy);
        $m!(bool pushback);
        $m!(bool offload);
        $m!(u32 offload_keep_ranks);
        $m!(u64 offload_return_lead_ns);
        $m!(u64 eqo_interval_ns);
        $m!(u64 sync_err_ns);
        $m!(u64 fabric_dead_ns);
        $m!(u16 ocs_count);
        $m!(u32 ocs_ports);
        $m!(u32 defer_max_extra_slices);
        $m!(bool eqo_ground_truth);
        $m!(u64 segment_queue_bytes);
        $m!(u64 elephant_threshold);
        $m!(bool telemetry);
        $m!(u64 trace_capacity);
        $m!(u64 span_sample_every);
        $m!(u64 span_capacity);
        $m!(u64 sample_every_ns);
        $m!(usize workers);
        $m!(u64 seed);
    };
}

/// A configuration field that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field.
    pub field: &'static str,
    /// Why the value was rejected.
    pub reason: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

fn err(field: &'static str, reason: impl Into<String>) -> ConfigError {
    ConfigError { field, reason: reason.into() }
}

/// Checked, fluent construction of a [`NetConfig`] (starts from defaults).
///
/// ```
/// use openoptics_core::NetConfig;
/// let cfg = NetConfig::builder().node_num(8).slice_ns(100_000).build().unwrap();
/// assert!(NetConfig::builder().guard_ns(99).slice_ns(50).build().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct NetConfigBuilder {
    cfg: NetConfig,
}

/// One fluent setter per configuration field, generated from the same field
/// list as JSON parse/serialize so the builder can never fall behind.
macro_rules! builder_setter {
    (str $name:ident) => {
        #[doc = concat!("Set [`NetConfig::", stringify!($name), "`].")]
        pub fn $name(mut self, v: impl Into<String>) -> Self {
            self.cfg.$name = v.into();
            self
        }
    };
    ($kind:ident $name:ident) => {
        #[doc = concat!("Set [`NetConfig::", stringify!($name), "`].")]
        pub fn $name(mut self, v: $kind) -> Self {
            self.cfg.$name = v;
            self
        }
    };
}

impl NetConfigBuilder {
    for_each_config_field!(builder_setter);

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<NetConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl NetConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> NetConfigBuilder {
        NetConfigBuilder::default()
    }

    /// Range-check the configuration ([`NetConfig::builder`] calls this;
    /// hand-built or JSON-loaded configurations may call it directly).
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.node.as_str() {
            "rack" | "host" => {}
            other => return Err(err("node", format!("{other:?} is not \"rack\" or \"host\""))),
        }
        if self.node_num == 0 {
            return Err(err("node_num", "a network needs at least one node"));
        }
        if self.uplink == 0 {
            return Err(err("uplink", "each node needs at least one optical uplink"));
        }
        if self.hosts_per_node == 0 {
            return Err(err("hosts_per_node", "each node needs at least one host"));
        }
        if self.slice_ns == 0 {
            return Err(err("slice_ns", "the time slice must be positive"));
        }
        if self.guard_ns >= self.slice_ns {
            return Err(err(
                "guard_ns",
                format!(
                    "guardband ({} ns) must be shorter than the slice ({} ns)",
                    self.guard_ns, self.slice_ns
                ),
            ));
        }
        if self.uplink_gbps == 0 {
            return Err(err("uplink_gbps", "optical uplinks need a positive rate"));
        }
        if self.host_link_gbps == 0 {
            return Err(err("host_link_gbps", "host links need a positive rate"));
        }
        if self.num_queues == 0 {
            return Err(err("num_queues", "ports need at least one calendar queue"));
        }
        if self.queue_capacity == 0 {
            return Err(err("queue_capacity", "calendar queues need a positive byte capacity"));
        }
        if self.workers == 0 {
            return Err(err("workers", "the engine needs at least one worker"));
        }
        match self.congestion_policy.as_str() {
            "drop" | "trim" | "wait" | "defer" => {}
            other => {
                return Err(err(
                    "congestion_policy",
                    format!("{other:?} is not one of \"drop\", \"trim\", \"wait\", \"defer\""),
                ))
            }
        }
        Ok(())
    }

    /// Parse from the JSON configuration file format. Missing fields take
    /// their defaults; unknown fields are ignored; wrongly-typed fields are
    /// an error.
    pub fn from_json(json_text: &str) -> Result<Self, json::JsonError> {
        let parsed = json::parse(json_text)?;
        let json::Json::Obj(fields) = parsed else {
            return Err(json::JsonError::not_an_object());
        };
        let mut cfg = NetConfig::default();
        for (key, value) in &fields {
            macro_rules! read_field {
                (str $name:ident) => {
                    if key == stringify!($name) {
                        cfg.$name = value.as_str()?.to_string();
                        continue;
                    }
                };
                (bool $name:ident) => {
                    if key == stringify!($name) {
                        cfg.$name = value.as_bool()?;
                        continue;
                    }
                };
                ($int:ident $name:ident) => {
                    if key == stringify!($name) {
                        cfg.$name = value.as_u64()? as $int;
                        continue;
                    }
                };
            }
            for_each_config_field!(read_field);
        }
        Ok(cfg)
    }

    /// Serialize to JSON (all fields, pretty-printed).
    pub fn to_json(&self) -> String {
        let mut lines: Vec<String> = vec![];
        macro_rules! write_field {
            (str $name:ident) => {
                lines.push(format!(
                    "  {}: {}",
                    json::escape(stringify!($name)),
                    json::escape(&self.$name)
                ));
            };
            ($_kind:ident $name:ident) => {
                lines.push(format!("  {}: {}", json::escape(stringify!($name)), self.$name));
            };
        }
        for_each_config_field!(write_field);
        format!("{{\n{}\n}}", lines.join(",\n"))
    }

    /// The slice structure for a schedule of `num_slices` slices.
    pub fn slice_config(&self, num_slices: u32) -> SliceConfig {
        SliceConfig::new(self.slice_ns, num_slices.max(1), self.guard_ns.min(self.slice_ns - 1))
    }

    /// Optical uplink bandwidth.
    pub fn uplink_bandwidth(&self) -> Bandwidth {
        Bandwidth::gbps(self.uplink_gbps)
    }

    /// Host link bandwidth.
    pub fn host_link_bandwidth(&self) -> Bandwidth {
        Bandwidth::gbps(self.host_link_gbps)
    }

    /// Electrical fabric bandwidth, if enabled.
    pub fn electrical_bandwidth(&self) -> Option<Bandwidth> {
        (self.electrical_gbps > 0).then(|| Bandwidth::gbps(self.electrical_gbps))
    }

    /// Total hosts in the network.
    pub fn total_hosts(&self) -> u32 {
        self.node_num * self.hosts_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let c = NetConfig { node_num: 108, uplink: 6, ..Default::default() };
        let j = c.to_json();
        let back = NetConfig::from_json(&j).expect("to_json output round-trips");
        assert_eq!(back.node_num, 108);
        assert_eq!(back.uplink, 6);
    }

    #[test]
    fn partial_json_uses_defaults() {
        // The paper's Fig. 5 style config: only the fields users care about.
        let c =
            NetConfig::from_json(r#"{"node":"host","node_num":128,"uplink":2,"slice_ns":2000}"#)
                .expect("literal is a valid partial config");
        assert_eq!(c.node, "host");
        assert_eq!(c.node_num, 128);
        assert_eq!(c.uplink, 2);
        assert_eq!(c.slice_ns, 2_000);
        assert_eq!(c.hosts_per_node, 1); // default
    }

    #[test]
    fn derived_values() {
        let c =
            NetConfig { node_num: 8, hosts_per_node: 6, uplink_gbps: 100, ..Default::default() };
        assert_eq!(c.total_hosts(), 48);
        assert_eq!(c.uplink_bandwidth(), Bandwidth::gbps(100));
        assert!(c.electrical_bandwidth().is_none());
        let sc = c.slice_config(16);
        assert_eq!(sc.num_slices, 16);
    }

    #[test]
    fn guard_clamped_below_slice() {
        let c = NetConfig { slice_ns: 500, guard_ns: 1_000, ..Default::default() };
        let sc = c.slice_config(4);
        assert!(sc.guard_ns < sc.slice_ns);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(NetConfig::from_json("{not json").is_err());
    }
}
